#include "serve/cache.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/error.h"
#include "util/serialize.h"

namespace fedml::serve {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t splitmix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t task_signature(const data::Dataset& d) {
  const std::uint64_t dims[2] = {d.x.rows(), d.x.cols()};
  std::uint64_t h = util::fnv1a(reinterpret_cast<const std::uint8_t*>(dims),
                                sizeof(dims));
  h = util::fnv1a(reinterpret_cast<const std::uint8_t*>(d.x.data()),
                  d.x.size() * sizeof(double), h);
  h = util::fnv1a(reinterpret_cast<const std::uint8_t*>(d.y.data()),
                  d.y.size() * sizeof(std::size_t), h);
  return h;
}

std::uint64_t user_task_signature(std::uint64_t user_id,
                                  const data::Dataset& d) {
  // Hash each row independently (features + label + width), then combine
  // with wrapping addition — commutative and associative, so any permutation
  // of the rows yields the same sum. Each per-row hash passes through the
  // SplitMix64 finalizer first; summing raw FNV values would let structured
  // row differences cancel.
  std::uint64_t combined = 0;
  const std::size_t cols = d.x.cols();
  for (std::size_t i = 0; i < d.size(); ++i) {
    std::uint64_t row = util::fnv1a(
        reinterpret_cast<const std::uint8_t*>(d.x.data() + i * cols),
        cols * sizeof(double));
    const std::uint64_t label = d.y[i];
    row = util::fnv1a(reinterpret_cast<const std::uint8_t*>(&label),
                      sizeof(label), row);
    const std::uint64_t width = cols;
    row = util::fnv1a(reinterpret_cast<const std::uint8_t*>(&width),
                      sizeof(width), row);
    combined += splitmix(row);
  }
  return splitmix(splitmix(user_id) + combined);
}

AdaptedCache::AdaptedCache(Config config) : config_(config) {
  FEDML_CHECK(config_.shards >= 1, "AdaptedCache: need at least one shard");
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Divide the budget evenly; earlier shards absorb the remainder so the
    // total is exactly `capacity`.
    shard->capacity = config_.capacity / config_.shards +
                      (s < config_.capacity % config_.shards ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

bool AdaptedCache::expired(const Entry& e, double now_s) const {
  return std::isfinite(config_.ttl_seconds) && config_.ttl_seconds > 0.0 &&
         now_s - e.inserted_s > config_.ttl_seconds;
}

std::shared_ptr<const nn::ParamList> AdaptedCache::get(const Key& key) {
  Shard& shard = shard_of(key);
  util::LockGuard lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return nullptr;
  }
  if (expired(*it->second, steady_seconds())) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.stats.expirations;
    ++shard.stats.misses;
    return nullptr;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // renew LRU
  ++shard.stats.hits;
  return it->second->params;
}

void AdaptedCache::put(const Key& key, nn::ParamList adapted) {
  Shard& shard = shard_of(key);
  util::LockGuard lock(shard.mutex);
  if (shard.capacity == 0) return;
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(
      Entry{key, std::make_shared<const nn::ParamList>(std::move(adapted)),
            steady_seconds()});
  shard.index[key] = shard.lru.begin();
  while (shard.lru.size() > shard.capacity) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

void AdaptedCache::invalidate_before(std::uint64_t version) {
  for (auto& shard : shards_) {
    util::LockGuard lock(shard->mutex);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->key.version < version) {
        shard->index.erase(it->key);
        it = shard->lru.erase(it);
        ++shard->stats.invalidations;
      } else {
        ++it;
      }
    }
  }
}

void AdaptedCache::clear() {
  for (auto& shard : shards_) {
    util::LockGuard lock(shard->mutex);
    shard->lru.clear();
    shard->index.clear();
  }
}

std::size_t AdaptedCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    util::LockGuard lock(shard->mutex);
    n += shard->lru.size();
  }
  return n;
}

AdaptedCache::Stats AdaptedCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    util::LockGuard lock(shard->mutex);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.evictions += shard->stats.evictions;
    total.expirations += shard->stats.expirations;
    total.invalidations += shard->stats.invalidations;
  }
  return total;
}

}  // namespace fedml::serve
