#include "serve/cache.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/serialize.h"

namespace fedml::serve {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t task_signature(const data::Dataset& d) {
  const std::uint64_t dims[2] = {d.x.rows(), d.x.cols()};
  std::uint64_t h = util::fnv1a(reinterpret_cast<const std::uint8_t*>(dims),
                                sizeof(dims));
  h = util::fnv1a(reinterpret_cast<const std::uint8_t*>(d.x.data()),
                  d.x.size() * sizeof(double), h);
  h = util::fnv1a(reinterpret_cast<const std::uint8_t*>(d.y.data()),
                  d.y.size() * sizeof(std::size_t), h);
  return h;
}

AdaptedCache::AdaptedCache(Config config) : config_(config) {}

bool AdaptedCache::expired(const Entry& e, double now_s) const {
  return std::isfinite(config_.ttl_seconds) && config_.ttl_seconds > 0.0 &&
         now_s - e.inserted_s > config_.ttl_seconds;
}

std::shared_ptr<const nn::ParamList> AdaptedCache::get(const Key& key) {
  util::LockGuard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (expired(*it->second, steady_seconds())) {
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // renew LRU position
  ++stats_.hits;
  return it->second->params;
}

void AdaptedCache::put(const Key& key, nn::ParamList adapted) {
  util::LockGuard lock(mutex_);
  if (config_.capacity == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key,
                        std::make_shared<const nn::ParamList>(std::move(adapted)),
                        steady_seconds()});
  index_[key] = lru_.begin();
  while (lru_.size() > config_.capacity) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void AdaptedCache::invalidate_before(std::uint64_t version) {
  util::LockGuard lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.version < version) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

void AdaptedCache::clear() {
  util::LockGuard lock(mutex_);
  lru_.clear();
  index_.clear();
}

std::size_t AdaptedCache::size() const {
  util::LockGuard lock(mutex_);
  return lru_.size();
}

AdaptedCache::Stats AdaptedCache::stats() const {
  util::LockGuard lock(mutex_);
  return stats_;
}

}  // namespace fedml::serve
