#include "rec/config.h"

#include <limits>
#include <ostream>

#include "util/error.h"

namespace fedml::rec {

Config Config::from_cli(util::Cli& cli) {
  Config c;
  const auto sz = [&cli](const std::string& key, std::size_t def) {
    return static_cast<std::size_t>(
        cli.get_int(key, static_cast<std::int64_t>(def)));
  };
  c.users = sz("users", c.users);
  c.items = sz("items", c.items);
  c.dim_latent = sz("dim_latent", c.dim_latent);
  c.item_zipf = cli.get_double("item_zipf", c.item_zipf);
  c.pref_scale = cli.get_double("pref_scale", c.pref_scale);
  c.common_scale = cli.get_double("common_scale", c.common_scale);
  c.label_noise = cli.get_double("label_noise", c.label_noise);
  c.min_samples = sz("min_samples", c.min_samples);
  c.max_samples = sz("max_samples", c.max_samples);
  c.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", static_cast<std::int64_t>(c.seed)));

  c.embed_dim = sz("embed_dim", c.embed_dim);
  c.hidden = sz("hidden", c.hidden);

  c.train_users = sz("train_users", c.train_users);
  c.k = sz("k", c.k);
  c.alpha = cli.get_double("alpha", c.alpha);
  c.beta = cli.get_double("beta", c.beta);
  c.iterations = sz("iterations", c.iterations);
  c.local_steps = sz("local_steps", c.local_steps);
  c.threads = sz("threads", c.threads);

  c.adapt_alpha = cli.get_double("adapt_alpha", c.adapt_alpha);
  c.adapt_steps = sz("adapt_steps", c.adapt_steps);
  c.serve_threads = sz("serve_threads", c.serve_threads);
  c.max_pending = sz("max_pending", c.max_pending);
  c.cache_capacity = sz("cache_capacity", c.cache_capacity);
  c.cache_shards = sz("cache_shards", c.cache_shards);
  c.registry_stripes = sz("registry_stripes", c.registry_stripes);
  c.cache_ttl_s = cli.get_double("cache_ttl_s", c.cache_ttl_s);
  c.traffic_zipf = cli.get_double("traffic_zipf", c.traffic_zipf);

  c.validate();
  return c;
}

void Config::validate() const {
  FEDML_CHECK(users >= 1, "rec::Config: users must be >= 1");
  FEDML_CHECK(items >= 2, "rec::Config: items must be >= 2");
  FEDML_CHECK(dim_latent >= 1, "rec::Config: dim_latent must be >= 1");
  FEDML_CHECK(item_zipf >= 0.0, "rec::Config: item_zipf must be >= 0");
  FEDML_CHECK(pref_scale >= 0.0, "rec::Config: pref_scale must be >= 0");
  FEDML_CHECK(common_scale >= 0.0, "rec::Config: common_scale must be >= 0");
  FEDML_CHECK(label_noise >= 0.0, "rec::Config: label_noise must be >= 0");
  FEDML_CHECK(min_samples >= 2,
              "rec::Config: min_samples must be >= 2 (K-vs-rest split)");
  FEDML_CHECK(max_samples >= min_samples,
              "rec::Config: max_samples must be >= min_samples");
  FEDML_CHECK(embed_dim >= 1, "rec::Config: embed_dim must be >= 1");
  FEDML_CHECK(train_users >= 1, "rec::Config: train_users must be >= 1");
  FEDML_CHECK(train_users <= users,
              "rec::Config: train_users cannot exceed users");
  FEDML_CHECK(k >= 1, "rec::Config: k must be >= 1");
  FEDML_CHECK(k < min_samples,
              "rec::Config: k must be < min_samples so every user keeps a "
              "nonempty eval side");
  FEDML_CHECK(alpha > 0.0 && beta > 0.0,
              "rec::Config: alpha and beta must be positive");
  FEDML_CHECK(iterations >= 1, "rec::Config: iterations must be >= 1");
  FEDML_CHECK(local_steps >= 1, "rec::Config: local_steps must be >= 1");
  FEDML_CHECK(adapt_alpha > 0.0, "rec::Config: adapt_alpha must be positive");
  FEDML_CHECK(adapt_steps >= 1, "rec::Config: adapt_steps must be >= 1");
  FEDML_CHECK(max_pending >= 1, "rec::Config: max_pending must be >= 1");
  FEDML_CHECK(cache_shards >= 1, "rec::Config: cache_shards must be >= 1");
  FEDML_CHECK(cache_capacity >= cache_shards,
              "rec::Config: cache_capacity must be >= cache_shards (every "
              "shard needs at least one slot)");
  FEDML_CHECK(registry_stripes >= 1,
              "rec::Config: registry_stripes must be >= 1");
  FEDML_CHECK(traffic_zipf >= 0.0, "rec::Config: traffic_zipf must be >= 0");
}

data::RecSysConfig Config::dataset() const {
  data::RecSysConfig d;
  d.num_users = users;
  d.num_items = items;
  d.dim = dim_latent;
  d.item_zipf_s = item_zipf;
  d.pref_scale = pref_scale;
  d.common_scale = common_scale;
  d.noise = label_noise;
  d.min_samples = min_samples;
  d.max_samples = max_samples;
  d.seed = seed;
  return d;
}

serve::AdaptedCache::Config Config::cache() const {
  serve::AdaptedCache::Config c;
  c.capacity = cache_capacity;
  c.shards = cache_shards;
  c.ttl_seconds = cache_ttl_s > 0.0 ? cache_ttl_s
                                    : std::numeric_limits<double>::infinity();
  return c;
}

serve::AdaptationServer::Config Config::server() const {
  serve::AdaptationServer::Config s;
  s.threads = serve_threads;
  s.max_pending = max_pending;
  s.use_cache = true;
  s.cache = cache();
  return s;
}

void Config::dump(std::ostream& os) const {
  os << "# users=" << users << "\n"
     << "# items=" << items << "\n"
     << "# dim_latent=" << dim_latent << "\n"
     << "# item_zipf=" << item_zipf << "\n"
     << "# pref_scale=" << pref_scale << "\n"
     << "# common_scale=" << common_scale << "\n"
     << "# label_noise=" << label_noise << "\n"
     << "# min_samples=" << min_samples << "\n"
     << "# max_samples=" << max_samples << "\n"
     << "# seed=" << seed << "\n"
     << "# embed_dim=" << embed_dim << "\n"
     << "# hidden=" << hidden << "\n"
     << "# train_users=" << train_users << "\n"
     << "# k=" << k << "\n"
     << "# alpha=" << alpha << "\n"
     << "# beta=" << beta << "\n"
     << "# iterations=" << iterations << "\n"
     << "# local_steps=" << local_steps << "\n"
     << "# threads=" << threads << "\n"
     << "# adapt_alpha=" << adapt_alpha << "\n"
     << "# adapt_steps=" << adapt_steps << "\n"
     << "# serve_threads=" << serve_threads << "\n"
     << "# max_pending=" << max_pending << "\n"
     << "# cache_capacity=" << cache_capacity << "\n"
     << "# cache_shards=" << cache_shards << "\n"
     << "# registry_stripes=" << registry_stripes << "\n"
     << "# cache_ttl_s=" << cache_ttl_s << "\n"
     << "# traffic_zipf=" << traffic_zipf << "\n";
}

}  // namespace fedml::rec
