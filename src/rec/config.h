#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "data/recsys.h"
#include "serve/cache.h"
#include "serve/server.h"
#include "util/cli.h"

namespace fedml::rec {

/// The one configuration surface for the recommendation workload — dataset,
/// model, federated meta-training, and serving knobs in a single documented
/// struct (the LightGBM `config.h` idiom: every option declared in one
/// place, parsed and validated centrally, dumped into every bench CSV header
/// so a result file is reproducible from its own preamble).
///
/// Mapping to the paper: each user is a task; `train_users` users form the
/// source federation for Algorithm 1; serving adapts the published meta-init
/// per user with `adapt_steps` gradient steps at rate `adapt_alpha`.
struct Config {
  // ---- dataset (data::RecSysConfig) ----------------------------------------
  std::size_t users = 1000000;      ///< user-id space (tasks)
  std::size_t items = 500;          ///< catalogue size
  std::size_t dim_latent = 8;       ///< generator latent dimension
  double item_zipf = 1.1;           ///< item-popularity Zipf exponent
  double pref_scale = 1.0;          ///< per-user taste stddev
  double common_scale = 1.0;        ///< population taste stddev
  double label_noise = 0.25;        ///< label-noise logit stddev
  std::size_t min_samples = 13;     ///< samples-per-user power-law clamp
  std::size_t max_samples = 40;
  std::uint64_t seed = 42;

  // ---- model (nn::RecRanker) -----------------------------------------------
  std::size_t embed_dim = 8;        ///< model embedding width
  std::size_t hidden = 0;           ///< MLP head width; 0 = dot-product head

  // ---- federated meta-training (core::train_fedml) -------------------------
  std::size_t train_users = 64;     ///< users in the source federation
  std::size_t k = 10;               ///< K-shot support size
  double alpha = 0.05;              ///< inner (adaptation) rate α
  double beta = 0.05;               ///< meta rate β
  std::size_t iterations = 120;     ///< total iterations T
  std::size_t local_steps = 5;      ///< T0
  std::size_t threads = 0;          ///< training threads (0 = hardware)

  // ---- serving (serve::AdaptationServer + AdaptedCache) --------------------
  double adapt_alpha = 0.05;        ///< per-user adaptation rate at serving
  std::size_t adapt_steps = 3;      ///< per-user gradient steps on a miss
  std::size_t serve_threads = 0;    ///< server workers (0 = hardware)
  std::size_t max_pending = 256;    ///< admission bound
  std::size_t cache_capacity = 65536;  ///< adapted-cache entries (total)
  std::size_t cache_shards = 8;     ///< independently-locked cache shards
  std::size_t registry_stripes = 8; ///< registry read stripes
  double cache_ttl_s = 0.0;         ///< entry TTL; <= 0 = never expires
  double traffic_zipf = 0.9;        ///< Zipf exponent of user-id traffic

  /// Read every `--key=value` option off the CLI (keys match the field
  /// names), validate, and return the config. Central: benches and examples
  /// share one parser, so no knob can drift between harnesses.
  static Config from_cli(util::Cli& cli);

  /// Throws util::Error on any inconsistent setting.
  void validate() const;

  /// Sub-config projections consumed by the layers below.
  [[nodiscard]] data::RecSysConfig dataset() const;
  [[nodiscard]] serve::AdaptedCache::Config cache() const;
  [[nodiscard]] serve::AdaptationServer::Config server() const;

  /// Write one `# key=value` line per option — prepended to every bench CSV
  /// so result files carry their full provenance.
  void dump(std::ostream& os) const;
};

}  // namespace fedml::rec
