#include "rec/workload.h"

#include <numeric>

#include "core/meta.h"
#include "fed/node.h"
#include "nn/embedding.h"
#include "serve/cache.h"
#include "util/error.h"
#include "util/rng.h"

namespace fedml::rec {

std::shared_ptr<nn::Module> make_model(const Config& config) {
  return nn::make_rec_ranker(config.items, config.embed_dim, config.hidden);
}

core::TrainResult train_meta_init(const Config& config, const data::RecSys& rec,
                                  const nn::Module& model,
                                  obs::Telemetry* telemetry) {
  FEDML_CHECK(rec.config().num_users >= config.train_users,
              "train_meta_init: generator holds fewer users than train_users");
  std::vector<std::uint64_t> user_ids(config.train_users);
  std::iota(user_ids.begin(), user_ids.end(), std::uint64_t{0});
  const data::FederatedDataset fd = rec.federation(user_ids);

  std::vector<std::size_t> node_ids(fd.nodes.size());
  std::iota(node_ids.begin(), node_ids.end(), std::size_t{0});
  util::Rng rng(config.seed ^ 0x5ec5'1ab5ull);
  std::vector<fed::EdgeNode> nodes =
      fed::make_edge_nodes(fd, node_ids, config.k, rng);
  FEDML_CHECK(!nodes.empty(),
              "train_meta_init: no trainable users (every history <= k)");

  core::FedMLConfig fc;
  fc.alpha = config.alpha;
  fc.beta = config.beta;
  fc.total_iterations = config.iterations;
  fc.local_steps = config.local_steps;
  fc.threads = config.threads;
  fc.telemetry = telemetry;
  const nn::ParamList theta0 = model.init_params(rng);
  return core::train_fedml(model, std::move(nodes), theta0, fc);
}

serve::AdaptRequest make_user_request(const Config& config,
                                      const data::RecSys& rec,
                                      std::uint64_t user_id) {
  data::NodeSplit split = rec.user_split(user_id, config.k);
  serve::AdaptRequest req;
  req.alpha = config.adapt_alpha;
  req.steps = config.adapt_steps;
  req.signature = serve::user_task_signature(user_id, split.train);
  req.adapt = std::move(split.train);
  req.eval = std::move(split.test);
  return req;
}

PersonalizationEval evaluate_personalization(const Config& config,
                                             const data::RecSys& rec,
                                             const nn::Module& model,
                                             const nn::ParamList& theta,
                                             std::size_t eval_users) {
  PersonalizationEval out;
  // Held-out users: never part of the training federation, wrapping into the
  // id space when the config trains on every user.
  for (std::size_t i = 0; i < eval_users; ++i) {
    const std::uint64_t uid =
        (config.train_users + i) % rec.config().num_users;
    const data::NodeSplit split = rec.user_split(uid, config.k);
    out.global_accuracy += core::empirical_accuracy(model, theta, split.test);
    const nn::ParamList phi = core::adapt(model, theta, split.train,
                                          config.adapt_alpha,
                                          config.adapt_steps);
    out.adapted_accuracy += core::empirical_accuracy(model, phi, split.test);
    ++out.users;
  }
  if (out.users > 0) {
    out.global_accuracy /= static_cast<double>(out.users);
    out.adapted_accuracy /= static_cast<double>(out.users);
  }
  return out;
}

}  // namespace fedml::rec
