#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/algorithms.h"
#include "data/recsys.h"
#include "nn/module.h"
#include "obs/telemetry.h"
#include "rec/config.h"
#include "serve/server.h"

namespace fedml::rec {

/// End-to-end glue for the federated recommendation workload: the config's
/// dataset + model + training knobs drive `core::train_fedml` (each user is
/// one task / edge node), and the trained meta-init is served per user
/// through `serve::AdaptationServer` with a reshuffle-stable cache key.

/// The ranking model described by the config (item table + taste vector +
/// head; see nn::RecRanker).
std::shared_ptr<nn::Module> make_model(const Config& config);

/// Train the meta-initialization over users [0, train_users) of the
/// generator — Algorithm 1 with one edge node per user. `telemetry` is
/// optional (null = off).
core::TrainResult train_meta_init(const Config& config, const data::RecSys& rec,
                                  const nn::Module& model,
                                  obs::Telemetry* telemetry = nullptr);

/// Serving-side request for one user: deterministic K-vs-rest split of the
/// user's history, adaptation knobs from the config, and the
/// order-insensitive `user_task_signature` so the cache entry survives
/// support-set reshuffling.
serve::AdaptRequest make_user_request(const Config& config,
                                      const data::RecSys& rec,
                                      std::uint64_t user_id);

/// Personalization gain on held-out users (ids picked after `train_users`):
/// accuracy of the raw meta-init versus the per-user adapted model, each
/// measured on the user's eval side. The gap is the paper's reason to
/// federate meta-learning instead of training one global model.
struct PersonalizationEval {
  double global_accuracy = 0.0;   ///< meta-init as-is, averaged over users
  double adapted_accuracy = 0.0;  ///< after per-user adaptation
  std::size_t users = 0;          ///< users actually evaluated
  [[nodiscard]] double gain() const {
    return adapted_accuracy - global_accuracy;
  }
};

PersonalizationEval evaluate_personalization(const Config& config,
                                             const data::RecSys& rec,
                                             const nn::Module& model,
                                             const nn::ParamList& theta,
                                             std::size_t eval_users);

}  // namespace fedml::rec
