#include "robust/adversary.h"

#include <algorithm>
#include <cmath>

#include "autodiff/ops.h"
#include "nn/loss.h"
#include "nn/params.h"
#include "util/error.h"

namespace fedml::robust {

using autodiff::Var;
namespace ops = fedml::autodiff::ops;
using tensor::Tensor;

namespace {

Tensor clamp(Tensor t, const ClipRange& clip) {
  if (!clip) return t;
  const auto [lo, hi] = *clip;
  return t.map([lo, hi](double v) { return std::clamp(v, lo, hi); });
}

/// Sum (not mean) cross-entropy so each sample's ascent direction is
/// independent of the batch size.
Var sum_cross_entropy(const Var& logits, const std::vector<std::size_t>& labels) {
  return ops::smul(nn::softmax_cross_entropy(logits, labels),
                   static_cast<double>(labels.size()));
}

}  // namespace

data::Dataset generate_adversarial(const nn::Module& model, const nn::ParamList& phi,
                                   const data::Dataset& seed, double lambda,
                                   double nu, std::size_t steps,
                                   const ClipRange& clip) {
  FEDML_CHECK(seed.size() > 0, "generate_adversarial: empty seed set");
  FEDML_CHECK(lambda >= 0.0 && nu > 0.0, "generate_adversarial: bad λ/ν");

  const nn::ParamList theta = nn::clone_leaves(phi, /*requires_grad=*/false);
  const Var x0 = ops::constant(seed.x);
  Tensor x = seed.x;

  const auto objective_at = [&](const Tensor& xt) {
    Var xv(xt, /*requires_grad=*/true);
    const Var logits = model.forward(theta, xv);
    const Var transport = ops::squared_norm(ops::sub(xv, x0));
    const Var obj =
        ops::sub(sum_cross_entropy(logits, seed.y), ops::smul(transport, lambda));
    return std::pair<double, Tensor>(obj.item(),
                                     autodiff::grad(obj, {xv})[0].value());
  };

  for (std::size_t s = 0; s < steps; ++s) {
    const auto [value, g] = objective_at(x);
    // Backtracking ascent: the surrogate is (λ−H_xx)-strongly concave, so a
    // fixed ν can overshoot badly when λ is large. Halve the step until the
    // objective actually increases (bounded number of trials).
    double step = nu;
    Tensor candidate = clamp(x + g * step, clip);
    for (int trial = 0; trial < 20 && objective_at(candidate).first < value;
         ++trial) {
      step *= 0.5;
      candidate = clamp(x + g * step, clip);
    }
    if (objective_at(candidate).first < value) break;  // ascent stalled
    x = std::move(candidate);
  }

  data::Dataset out;
  out.x = std::move(x);
  out.y = seed.y;
  return out;
}

data::Dataset fgsm_attack(const nn::Module& model, const nn::ParamList& params,
                          const data::Dataset& clean, double xi,
                          const ClipRange& clip) {
  FEDML_CHECK(clean.size() > 0, "fgsm_attack: empty dataset");
  const nn::ParamList theta = nn::clone_leaves(params, /*requires_grad=*/false);
  Var xv(clean.x, /*requires_grad=*/true);
  const Var loss = sum_cross_entropy(model.forward(theta, xv), clean.y);
  const Var g = autodiff::grad(loss, {xv})[0];

  data::Dataset out;
  out.x = clean.x;
  const Tensor& gv = g.value();
  for (std::size_t i = 0; i < out.x.rows(); ++i) {
    for (std::size_t j = 0; j < out.x.cols(); ++j) {
      const double s = gv(i, j) > 0.0 ? 1.0 : (gv(i, j) < 0.0 ? -1.0 : 0.0);
      out.x(i, j) += xi * s;
    }
  }
  out.x = clamp(std::move(out.x), clip);
  out.y = clean.y;
  return out;
}

}  // namespace fedml::robust
