#pragma once

#include <cstddef>
#include <optional>
#include <utility>

#include "data/dataset.h"
#include "nn/module.h"

namespace fedml::robust {

/// Optional elementwise clamp applied to perturbed features (e.g. keep
/// image pixels inside [0,1]).
using ClipRange = std::optional<std::pair<double, double>>;

/// Wasserstein-DRO inner maximization (paper Lemma 2 / Algorithm 2 lines
/// 15–21): starting from the seed samples (x0, y0), run `steps` iterations of
/// gradient ascent with rate `nu` on the robust surrogate
///     l(φ, (x, y0)) − λ · c((x, y0), (x0, y0)),
/// with transport cost c = ‖x − x0‖²₂ (labels are never perturbed; the paper
/// uses cost ∞ on label changes). All samples in `seed` are perturbed
/// jointly (the per-sample problems are independent, so batching is exact).
///
/// `phi` should be detached parameters (the adapted model φ_i^t of Alg. 2).
data::Dataset generate_adversarial(const nn::Module& model, const nn::ParamList& phi,
                                   const data::Dataset& seed, double lambda,
                                   double nu, std::size_t steps,
                                   const ClipRange& clip = std::nullopt);

/// Fast Gradient Sign Method (evaluation-time attack, paper Section VI-C):
///     x_adv = x + ξ · sign(∇_x l(θ, (x, y))).
data::Dataset fgsm_attack(const nn::Module& model, const nn::ParamList& params,
                          const data::Dataset& clean, double xi,
                          const ClipRange& clip = std::nullopt);

}  // namespace fedml::robust
