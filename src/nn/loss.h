#pragma once

#include <cstddef>
#include <vector>

#include "autodiff/var.h"

namespace fedml::nn {

/// Mean softmax cross-entropy over the batch:
///   (1/B) Σ_b [logsumexp(logits_b) − logits_b[y_b]].
/// Exact under double backward (the stabilizing row-max shift cancels).
autodiff::Var softmax_cross_entropy(const autodiff::Var& logits,
                                    const std::vector<std::size_t>& labels);

/// Mean squared error (1/(B·D)) ‖pred − target‖²; `target` is data (constant).
autodiff::Var mse_loss(const autodiff::Var& pred, const tensor::Tensor& target);

/// Fraction of rows whose argmax equals the label. Pure metric (no graph).
double accuracy(const tensor::Tensor& logits, const std::vector<std::size_t>& labels);

/// Row-wise softmax probabilities as a plain tensor (metric/attack helper).
tensor::Tensor softmax_rows(const tensor::Tensor& logits);

}  // namespace fedml::nn
