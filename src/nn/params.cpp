#include "nn/params.h"

#include <cmath>
#include <functional>

#include "autodiff/ops.h"
#include "kern/kern.h"
#include "util/error.h"

namespace fedml::nn {

using autodiff::Var;
namespace ops = autodiff::ops;
using tensor::Tensor;

ParamList clone_leaves(const ParamList& params, bool requires_grad) {
  ParamList out;
  out.reserve(params.size());
  for (const auto& p : params) out.emplace_back(p.value(), requires_grad);
  return out;
}

ParamList zeros_like(const std::vector<ParamShape>& shapes) {
  ParamList out;
  out.reserve(shapes.size());
  for (const auto& s : shapes)
    out.emplace_back(Tensor::zeros(s.rows, s.cols), /*requires_grad=*/false);
  return out;
}

ParamList add_scaled(const ParamList& a, const ParamList& b, double s,
                     bool requires_grad) {
  FEDML_CHECK(a.size() == b.size(), "add_scaled: arity mismatch");
  ParamList out;
  out.reserve(a.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    // One pass, bit-identical to a + b*s: x + s·y evaluates the same scalar
    // expression the two-temporary chain did.
    out.emplace_back(tensor::scale_add(a[k].value(), b[k].value(), s),
                     requires_grad);
  }
  return out;
}

namespace {

/// Canonical pairwise reduction over term(i), i in [lo, hi): recursive
/// halving at mid = lo + (hi − lo)/2. Single association shape shared by
/// every aggregation path (see the pairwise_sum contract in params.h).
template <typename TermFn>
Tensor reduce_pairwise(std::size_t lo, std::size_t hi, const TermFn& term) {
  if (hi - lo == 1) return term(lo);
  const std::size_t mid = lo + (hi - lo) / 2;
  return reduce_pairwise(lo, mid, term) + reduce_pairwise(mid, hi, term);
}

}  // namespace

ParamList weighted_average(const std::vector<ParamList>& lists,
                           const std::vector<double>& weights,
                           bool requires_grad) {
  FEDML_CHECK(!lists.empty(), "weighted_average: no inputs");
  FEDML_CHECK(lists.size() == weights.size(), "weighted_average: arity mismatch");
  const std::size_t arity = lists[0].size();
  for (const auto& l : lists)
    FEDML_CHECK(l.size() == arity, "weighted_average: ragged inputs");
  ParamList out;
  out.reserve(arity);
  for (std::size_t k = 0; k < arity; ++k) {
    out.emplace_back(
        reduce_pairwise(0, lists.size(),
                        [&](std::size_t i) {
                          return lists[i][k].value() * weights[i];
                        }),
        requires_grad);
  }
  return out;
}

ParamList scale(const ParamList& params, double s, bool requires_grad) {
  ParamList out;
  out.reserve(params.size());
  for (const auto& p : params) out.emplace_back(p.value() * s, requires_grad);
  return out;
}

ParamList pairwise_sum(const std::vector<ParamList>& lists,
                       bool requires_grad) {
  FEDML_CHECK(!lists.empty(), "pairwise_sum: no inputs");
  const std::size_t arity = lists[0].size();
  for (const auto& l : lists)
    FEDML_CHECK(l.size() == arity, "pairwise_sum: ragged inputs");
  ParamList out;
  out.reserve(arity);
  for (std::size_t k = 0; k < arity; ++k) {
    out.emplace_back(reduce_pairwise(0, lists.size(),
                                     [&](std::size_t i) {
                                       return lists[i][k].value();
                                     }),
                     requires_grad);
  }
  return out;
}

double pairwise_sum(const std::vector<double>& values) {
  FEDML_CHECK(!values.empty(), "pairwise_sum: no inputs");
  const std::function<double(std::size_t, std::size_t)> reduce =
      [&](std::size_t lo, std::size_t hi) -> double {
    if (hi - lo == 1) return values[lo];
    const std::size_t mid = lo + (hi - lo) / 2;
    return reduce(lo, mid) + reduce(mid, hi);
  };
  return reduce(0, values.size());
}

double param_distance(const ParamList& a, const ParamList& b) {
  FEDML_CHECK(a.size() == b.size(), "param_distance: arity mismatch");
  double sq = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) {
    const Tensor d = a[k].value() - b[k].value();
    sq += tensor::dot(d, d);
  }
  return std::sqrt(sq);
}

double param_norm(const ParamList& a) {
  double sq = 0.0;
  for (const auto& p : a) sq += tensor::dot(p.value(), p.value());
  return std::sqrt(sq);
}

Tensor flatten(const ParamList& params) {
  std::size_t n = 0;
  for (const auto& p : params) n += p.value().size();
  std::vector<double> flat;
  flat.reserve(n);
  for (const auto& p : params) {
    const auto& v = p.value().flat();
    flat.insert(flat.end(), v.begin(), v.end());
  }
  return {1, n, std::move(flat)};
}

ParamList unflatten(const Tensor& flat, const std::vector<ParamShape>& shapes,
                    bool requires_grad) {
  ParamList out;
  out.reserve(shapes.size());
  std::size_t pos = 0;
  for (const auto& s : shapes) {
    const std::size_t n = s.rows * s.cols;
    FEDML_CHECK(pos + n <= flat.size(), "unflatten: buffer too small");
    const auto begin = flat.flat().begin() + static_cast<std::ptrdiff_t>(pos);
    std::vector<double> chunk(begin, begin + static_cast<std::ptrdiff_t>(n));
    out.emplace_back(Tensor(s.rows, s.cols, std::move(chunk)), requires_grad);
    pos += n;
  }
  FEDML_CHECK(pos == flat.size(), "unflatten: buffer too large");
  return out;
}

ParamList sgd_step_graph(const ParamList& params, const ParamList& grads, double lr) {
  FEDML_CHECK(params.size() == grads.size(), "sgd_step_graph: arity mismatch");
  ParamList out;
  out.reserve(params.size());
  // Mode sampled once at graph-build time. The fused node computes
  // p + (−lr)·g, bit-identical to sub(p, smul(g, lr)) — (−s)·y = −(s·y) and
  // x + (−t) = x − t are exact in IEEE — but the graph shape differs (one
  // node instead of two), so compat keeps the historical chain.
  const bool fast = kern::mode() == kern::Mode::kFast;
  for (std::size_t k = 0; k < params.size(); ++k) {
    if (fast) {
      out.push_back(ops::scale_add(params[k], grads[k], -lr));
    } else {
      out.push_back(ops::sub(params[k], ops::smul(grads[k], lr)));
    }
  }
  return out;
}

ParamList sgd_step_leaf(const ParamList& params, const ParamList& grads, double lr) {
  return add_scaled(params, grads, -lr);
}

void serialize(const ParamList& params, util::ByteWriter& w) {
  w.write_u64(params.size());
  for (const auto& p : params) {
    w.write_u64(p.value().rows());
    w.write_u64(p.value().cols());
    w.write_f64_span(p.value().data(), p.value().size());
  }
}

ParamList deserialize(util::ByteReader& r, bool requires_grad) {
  const auto arity = r.read_u64();
  ParamList out;
  out.reserve(arity);
  for (std::size_t k = 0; k < arity; ++k) {
    const auto rows = r.read_u64();
    const auto cols = r.read_u64();
    auto data = r.read_f64_vector();
    FEDML_CHECK(data.size() == rows * cols, "deserialize: corrupt tensor");
    out.emplace_back(Tensor(rows, cols, std::move(data)), requires_grad);
  }
  return out;
}

std::size_t serialized_size_bytes(const ParamList& params) {
  std::size_t bytes = sizeof(std::uint64_t);
  for (const auto& p : params) {
    bytes += 3 * sizeof(std::uint64_t) + p.value().size() * sizeof(double);
  }
  return bytes;
}

}  // namespace fedml::nn
