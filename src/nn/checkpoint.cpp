#include "nn/checkpoint.h"

#include <cstdint>
#include <fstream>

#include "nn/params.h"
#include "util/error.h"
#include "util/serialize.h"

namespace fedml::nn {

namespace {
constexpr std::uint32_t kMagic = 0xfed31337;
// v1: magic, version, name, params.
// v2: magic, version, fnv1a(payload), payload — where payload is the v1
// body (name + params). The checksum lets the model registry reject a
// truncated or bit-flipped file with a clear error instead of a garbage
// deserialize. v1 files still load.
constexpr std::uint32_t kVersion = 2;
}  // namespace

void save_checkpoint(const std::string& path, const nn::Module& model,
                     const ParamList& params) {
  util::ByteWriter payload;
  payload.write_string(model.name());
  serialize(params, payload);

  util::ByteWriter w;
  w.write_u32(kMagic);
  w.write_u32(kVersion);
  w.write_u64(util::fnv1a(payload.bytes().data(), payload.size()));
  w.write_bytes(payload.bytes().data(), payload.size());

  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  FEDML_CHECK(f.good(), "cannot open checkpoint file for writing: " + path);
  f.write(reinterpret_cast<const char*>(w.bytes().data()),
          static_cast<std::streamsize>(w.size()));
  FEDML_CHECK(f.good(), "failed to write checkpoint: " + path);
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  FEDML_CHECK(f.good(), "cannot open checkpoint file: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  util::ByteReader r(bytes);
  FEDML_CHECK(r.read_u32() == kMagic, "not a fedml checkpoint: " + path);
  const std::uint32_t version = r.read_u32();
  FEDML_CHECK(version == 1 || version == kVersion,
              "unsupported checkpoint version " + std::to_string(version));
  if (version >= 2) {
    const std::uint64_t stored = r.read_u64();
    const std::size_t start = r.position();
    const std::uint64_t actual =
        util::fnv1a(bytes.data() + start, bytes.size() - start);
    FEDML_CHECK(actual == stored,
                "checkpoint payload checksum mismatch (corrupt or truncated "
                "file): " + path);
  }
  Checkpoint ckpt;
  ckpt.model_name = r.read_string();
  ckpt.params = deserialize(r);
  FEDML_CHECK(r.exhausted(), "trailing bytes in checkpoint: " + path);
  return ckpt;
}

ParamList load_checkpoint_for(const std::string& path, const nn::Module& model) {
  Checkpoint ckpt = load_checkpoint(path);
  FEDML_CHECK(ckpt.model_name == model.name(),
              "checkpoint was saved for model '" + ckpt.model_name +
                  "', not '" + model.name() + "'");
  const auto shapes = model.param_shapes();
  FEDML_CHECK(ckpt.params.size() == shapes.size(),
              "checkpoint parameter count mismatch");
  for (std::size_t k = 0; k < shapes.size(); ++k) {
    FEDML_CHECK(ckpt.params[k].rows() == shapes[k].rows &&
                    ckpt.params[k].cols() == shapes[k].cols,
                "checkpoint parameter shape mismatch at index " +
                    std::to_string(k));
  }
  return ckpt.params;
}

}  // namespace fedml::nn
