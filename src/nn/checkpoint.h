#pragma once

#include <string>

#include "nn/module.h"

namespace fedml::nn {

/// Model checkpoint: the trained parameter values plus enough metadata to
/// refuse loading into an incompatible model. The wire format is the same
/// shape-prefixed layout the simulated uplink uses, prefixed (since format
/// v2) with an FNV-1a payload checksum so truncated or bit-flipped files
/// fail loudly; v1 files (no checksum) still load.
struct Checkpoint {
  std::string model_name;  ///< Module::name() at save time
  ParamList params;
};

/// Write a checkpoint to `path` (binary). Throws util::Error on I/O failure.
void save_checkpoint(const std::string& path, const nn::Module& model,
                     const ParamList& params);

/// Read a checkpoint from `path`. Throws util::Error on I/O failure or a
/// corrupt/truncated file.
Checkpoint load_checkpoint(const std::string& path);

/// Load and validate against `model`: the stored name and every parameter
/// shape must match. Returns the parameters as trainable leaves.
ParamList load_checkpoint_for(const std::string& path, const nn::Module& model);

}  // namespace fedml::nn
