#include "nn/module.h"

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace fedml::nn {

using autodiff::Var;
using tensor::Tensor;

ParamList Module::init_params(util::Rng& rng) const {
  ParamList params;
  for (const auto& shape : param_shapes()) {
    if (shape.rows == 1) {
      // Treat 1×C parameters as biases: zero init.
      params.emplace_back(Tensor::zeros(shape.rows, shape.cols),
                          /*requires_grad=*/true);
    } else {
      const double stddev = 1.0 / std::sqrt(static_cast<double>(shape.rows));
      params.emplace_back(Tensor::randn(shape.rows, shape.cols, rng, 0.0, stddev),
                          /*requires_grad=*/true);
    }
  }
  return params;
}

std::size_t Module::num_scalars() const {
  std::size_t n = 0;
  for (const auto& s : param_shapes()) n += s.rows * s.cols;
  return n;
}

Linear::Linear(std::size_t in, std::size_t out, bool bias)
    : in_(in), out_(out), bias_(bias) {
  FEDML_CHECK(in > 0 && out > 0, "Linear dimensions must be positive");
}

std::vector<ParamShape> Linear::param_shapes() const {
  std::vector<ParamShape> shapes{{in_, out_}};
  if (bias_) shapes.push_back({1, out_});
  return shapes;
}

Var Linear::forward(const ParamList& params, const Var& x) const {
  FEDML_CHECK(params.size() == (bias_ ? 2u : 1u), "Linear: wrong param count");
  FEDML_CHECK(x.cols() == in_, "Linear: input width mismatch");
  Var y = autodiff::ops::matmul(x, params[0]);
  if (bias_) y = autodiff::ops::add_rowvec(y, params[1]);
  return y;
}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_) + "->" + std::to_string(out_) +
         (bias_ ? "" : ", no bias") + ")";
}

Var Activation::forward(const ParamList& params, const Var& x) const {
  FEDML_CHECK(params.empty(), "Activation takes no parameters");
  switch (kind_) {
    case Kind::kRelu: return autodiff::ops::relu(x);
    case Kind::kTanh: return autodiff::ops::tanh(x);
    case Kind::kSigmoid: return autodiff::ops::sigmoid(x);
  }
  FEDML_THROW("unknown activation kind");
}

std::string Activation::name() const {
  switch (kind_) {
    case Kind::kRelu: return "ReLU";
    case Kind::kTanh: return "Tanh";
    case Kind::kSigmoid: return "Sigmoid";
  }
  return "Activation(?)";
}

Conv2d::Conv2d(std::size_t side, std::size_t kernel, std::size_t filters)
    : side_(side), kernel_(kernel), filters_(filters) {
  FEDML_CHECK(kernel >= 1 && kernel <= side, "Conv2d: kernel must fit the image");
  FEDML_CHECK(filters >= 1, "Conv2d: need at least one filter");
}

std::vector<ParamShape> Conv2d::param_shapes() const {
  // One k×k kernel per filter, then one scalar bias per filter.
  std::vector<ParamShape> shapes;
  for (std::size_t f = 0; f < filters_; ++f) shapes.push_back({kernel_, kernel_});
  for (std::size_t f = 0; f < filters_; ++f) shapes.push_back({1, 1});
  return shapes;
}

Var Conv2d::forward(const ParamList& params, const Var& x) const {
  FEDML_CHECK(params.size() == 2 * filters_, "Conv2d: wrong param count");
  FEDML_CHECK(x.cols() == side_ * side_, "Conv2d: input width mismatch");
  Var out;
  for (std::size_t f = 0; f < filters_; ++f) {
    Var y = autodiff::ops::conv2d_valid(x, params[f], side_, side_);
    // Per-filter scalar bias broadcast over every output pixel.
    y = autodiff::ops::add(
        y, autodiff::ops::expand(params[filters_ + f], y.rows(), y.cols()));
    out = out.defined() ? autodiff::ops::concat_cols(out, y) : y;
  }
  return out;
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(side_) + "x" + std::to_string(side_) +
         ", k=" + std::to_string(kernel_) + ", f=" + std::to_string(filters_) +
         ")";
}

Sequential::Sequential(std::vector<std::shared_ptr<Module>> layers)
    : layers_(std::move(layers)) {
  FEDML_CHECK(!layers_.empty(), "Sequential needs at least one layer");
  for (const auto& l : layers_) FEDML_CHECK(l != nullptr, "null layer");
}

std::vector<ParamShape> Sequential::param_shapes() const {
  std::vector<ParamShape> shapes;
  for (const auto& l : layers_) {
    auto s = l->param_shapes();
    shapes.insert(shapes.end(), s.begin(), s.end());
  }
  return shapes;
}

Var Sequential::forward(const ParamList& params, const Var& x) const {
  Var h = x;
  std::size_t offset = 0;
  for (const auto& l : layers_) {
    const std::size_t count = l->param_shapes().size();
    FEDML_CHECK(offset + count <= params.size(), "Sequential: too few params");
    ParamList slice(params.begin() + static_cast<std::ptrdiff_t>(offset),
                    params.begin() + static_cast<std::ptrdiff_t>(offset + count));
    h = l->forward(slice, h);
    offset += count;
  }
  FEDML_CHECK(offset == params.size(), "Sequential: too many params");
  return h;
}

std::string Sequential::name() const {
  std::string s = "Sequential[";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i) s += ", ";
    s += layers_[i]->name();
  }
  return s + "]";
}

std::shared_ptr<Module> make_softmax_regression(std::size_t in, std::size_t classes) {
  return std::make_shared<Linear>(in, classes);
}

std::shared_ptr<Module> make_cnn(std::size_t side, std::size_t kernel,
                                 std::size_t classes, std::size_t filters) {
  auto conv = std::make_shared<Conv2d>(side, kernel, filters);
  const std::size_t flat = filters * conv->out_side() * conv->out_side();
  std::vector<std::shared_ptr<Module>> layers{
      std::move(conv), std::make_shared<Activation>(Activation::Kind::kRelu),
      std::make_shared<Linear>(flat, classes)};
  return std::make_shared<Sequential>(std::move(layers));
}

std::shared_ptr<Module> make_mlp(std::size_t in, const std::vector<std::size_t>& hidden,
                                 std::size_t classes) {
  std::vector<std::shared_ptr<Module>> layers;
  std::size_t prev = in;
  for (const auto h : hidden) {
    layers.push_back(std::make_shared<Linear>(prev, h));
    layers.push_back(std::make_shared<Activation>(Activation::Kind::kRelu));
    prev = h;
  }
  layers.push_back(std::make_shared<Linear>(prev, classes));
  return std::make_shared<Sequential>(std::move(layers));
}

}  // namespace fedml::nn
