#include "nn/embedding.h"

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace fedml::nn {

using tensor::Tensor;

FrozenEmbedding::FrozenEmbedding(std::size_t vocab, std::size_t dim, Tensor table)
    : vocab_(vocab), dim_(dim), table_(std::move(table)) {
  FEDML_CHECK(table_.rows() == vocab_ && table_.cols() == dim_,
              "embedding table shape must be vocab×dim");
}

FrozenEmbedding FrozenEmbedding::random(std::size_t vocab, std::size_t dim,
                                        util::Rng& rng) {
  const double stddev = 1.0 / std::sqrt(static_cast<double>(dim));
  return {vocab, dim, Tensor::randn(vocab, dim, rng, 0.0, stddev)};
}

Tensor FrozenEmbedding::featurize(const std::vector<std::size_t>& tokens) const {
  FEDML_CHECK(!tokens.empty(), "cannot featurize an empty sequence");
  Tensor out(1, dim_);
  for (const auto tok : tokens) {
    FEDML_CHECK(tok < vocab_, "token id out of vocabulary");
    for (std::size_t j = 0; j < dim_; ++j) out(0, j) += table_(tok, j);
  }
  out *= 1.0 / static_cast<double>(tokens.size());
  return out;
}

Tensor FrozenEmbedding::featurize_batch(
    const std::vector<std::vector<std::size_t>>& sequences) const {
  FEDML_CHECK(!sequences.empty(), "cannot featurize an empty batch");
  Tensor out(sequences.size(), dim_);
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    const Tensor row = featurize(sequences[i]);
    for (std::size_t j = 0; j < dim_; ++j) out(i, j) = row(0, j);
  }
  return out;
}

}  // namespace fedml::nn
