#include "nn/embedding.h"

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace fedml::nn {

using autodiff::Var;
using tensor::Tensor;

FrozenEmbedding::FrozenEmbedding(std::size_t vocab, std::size_t dim, Tensor table)
    : vocab_(vocab), dim_(dim), table_(std::move(table)) {
  FEDML_CHECK(table_.rows() == vocab_ && table_.cols() == dim_,
              "embedding table shape must be vocab×dim");
}

FrozenEmbedding FrozenEmbedding::random(std::size_t vocab, std::size_t dim,
                                        util::Rng& rng) {
  const double stddev = 1.0 / std::sqrt(static_cast<double>(dim));
  return {vocab, dim, Tensor::randn(vocab, dim, rng, 0.0, stddev)};
}

Tensor FrozenEmbedding::featurize(const std::vector<std::size_t>& tokens) const {
  FEDML_CHECK(!tokens.empty(), "cannot featurize an empty sequence");
  Tensor out(1, dim_);
  for (const auto tok : tokens) {
    FEDML_CHECK(tok < vocab_, "token id out of vocabulary");
    for (std::size_t j = 0; j < dim_; ++j) out(0, j) += table_(tok, j);
  }
  out *= 1.0 / static_cast<double>(tokens.size());
  return out;
}

Tensor FrozenEmbedding::featurize_batch(
    const std::vector<std::vector<std::size_t>>& sequences) const {
  FEDML_CHECK(!sequences.empty(), "cannot featurize an empty batch");
  Tensor out(sequences.size(), dim_);
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    const Tensor row = featurize(sequences[i]);
    for (std::size_t j = 0; j < dim_; ++j) out(i, j) = row(0, j);
  }
  return out;
}

RecRanker::RecRanker(std::size_t num_items, std::size_t dim, std::size_t hidden)
    : num_items_(num_items), dim_(dim), hidden_(hidden) {
  FEDML_CHECK(num_items > 0 && dim > 0, "RecRanker: items and dim must be positive");
}

std::vector<ParamShape> RecRanker::param_shapes() const {
  std::vector<ParamShape> shapes{{num_items_, dim_},  // item embedding table
                                 {1, dim_},           // user taste vector
                                 {num_items_, 1}};    // item popularity bias
  if (hidden_ > 0) {
    shapes.push_back({2 * dim_, hidden_});
    shapes.push_back({1, hidden_});
    shapes.push_back({hidden_, 2});
    shapes.push_back({1, 2});
  }
  return shapes;
}

autodiff::Var RecRanker::forward(const ParamList& params,
                                 const autodiff::Var& x) const {
  namespace ops = autodiff::ops;
  FEDML_CHECK(params.size() == param_shapes().size(),
              "RecRanker: wrong param count");
  FEDML_CHECK(x.cols() >= 1, "RecRanker: input needs an item-id column");
  const std::size_t batch = x.rows();

  // Item ids ride in column 0 as doubles; they are data, not differentiable.
  std::vector<std::size_t> ids(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    const double v = x.value()(i, 0);
    FEDML_CHECK(v >= 0.0 && v < static_cast<double>(num_items_),
                "RecRanker: item id out of catalogue range");
    ids[i] = static_cast<std::size_t>(v + 0.5);
  }

  const Var e = ops::gather_rows(params[0], ids);           // B×dim
  const Var u = ops::expand_rows(params[1], batch);         // B×dim
  const Var bias = ops::gather_rows(params[2], ids);        // B×1
  Var score;  // B×1 "like" logit
  if (hidden_ == 0) {
    score = ops::add(ops::row_sums(ops::mul(e, u)), bias);
  } else {
    const Var features = ops::concat_cols(ops::mul(e, u), e);  // B×2dim
    Var h = ops::add_rowvec(ops::matmul(features, params[3]), params[4]);
    h = ops::relu(h);
    const Var out = ops::add_rowvec(ops::matmul(h, params[5]), params[6]);
    // Fold both head logits into one score so every head yields the same
    // [0, score] logit layout below.
    score = ops::add(ops::sub(ops::slice_cols(out, 1, 1), ops::slice_cols(out, 0, 1)),
                     bias);
  }
  const Var zero = ops::constant(Tensor::zeros(batch, 1));
  return ops::concat_cols(zero, score);  // [dislike, like] logits
}

ParamList RecRanker::init_params(util::Rng& rng) const {
  ParamList params = Module::init_params(rng);
  // Override the table default (stddev 1/sqrt(rows) vanishes for large
  // catalogues): embedding rows get unit norm in expectation.
  const double stddev = 1.0 / std::sqrt(static_cast<double>(dim_));
  params[0] = autodiff::Var(Tensor::randn(num_items_, dim_, rng, 0.0, stddev),
                            /*requires_grad=*/true);
  params[2] = autodiff::Var(Tensor::zeros(num_items_, 1), /*requires_grad=*/true);
  return params;
}

std::string RecRanker::name() const {
  return "RecRanker(items=" + std::to_string(num_items_) +
         ", dim=" + std::to_string(dim_) +
         (hidden_ == 0 ? ", dot" : ", mlp=" + std::to_string(hidden_)) + ")";
}

std::shared_ptr<Module> make_rec_ranker(std::size_t num_items, std::size_t dim,
                                        std::size_t hidden) {
  return std::make_shared<RecRanker>(num_items, dim, hidden);
}

}  // namespace fedml::nn
