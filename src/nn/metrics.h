#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace fedml::nn {

/// Confusion matrix for a C-class problem: entry (i, j) counts samples of
/// true class i predicted as class j.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  /// Tally predictions (argmax of logits) against labels.
  void add(const tensor::Tensor& logits, const std::vector<std::size_t>& labels);

  [[nodiscard]] std::size_t count(std::size_t truth, std::size_t predicted) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t num_classes() const { return classes_; }

  /// Overall accuracy (trace / total); 0 when empty.
  [[nodiscard]] double accuracy() const;
  /// Per-class precision / recall / F1 (0 when a denominator vanishes).
  [[nodiscard]] double precision(std::size_t cls) const;
  [[nodiscard]] double recall(std::size_t cls) const;
  [[nodiscard]] double f1(std::size_t cls) const;
  /// Unweighted mean of per-class F1 scores.
  [[nodiscard]] double macro_f1() const;

 private:
  std::size_t classes_;
  std::size_t total_ = 0;
  std::vector<std::size_t> counts_;  // row-major classes_×classes_
};

}  // namespace fedml::nn
