#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "nn/module.h"

namespace fedml::nn {

/// Stateful first-order optimizer over a ParamList. Parameters are
/// functional (immutable leaves), so `step` returns the next parameter point
/// instead of mutating in place. State (momentum/moments) is keyed by
/// position in the list and persists across steps.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// One update from `params` along `grads`; returns fresh leaves.
  virtual ParamList step(const ParamList& params, const ParamList& grads) = 0;

  /// Drop accumulated state (e.g. after a global aggregation replaces the
  /// iterate wholesale).
  virtual void reset() = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Plain SGD with optional heavy-ball momentum:
///   v ← μv + g,  θ ← θ − lr·v.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);

  ParamList step(const ParamList& params, const ParamList& grads) override;
  void reset() override { velocity_.clear(); }
  [[nodiscard]] std::string name() const override;

 private:
  double lr_;
  double momentum_;
  std::vector<tensor::Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);

  ParamList step(const ParamList& params, const ParamList& grads) override;
  void reset() override;
  [[nodiscard]] std::string name() const override;

 private:
  double lr_, beta1_, beta2_, epsilon_;
  std::size_t t_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

/// Optimizer kinds selectable from trainer configs.
enum class OptimizerKind { kSgd, kSgdMomentum, kAdam };

/// Factory for the kinds above; `lr` is the base learning rate.
std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind, double lr);

}  // namespace fedml::nn
