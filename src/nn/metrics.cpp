#include "nn/metrics.h"

#include "util/error.h"

namespace fedml::nn {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : classes_(num_classes), counts_(num_classes * num_classes, 0) {
  FEDML_CHECK(num_classes >= 2, "confusion matrix needs at least two classes");
}

void ConfusionMatrix::add(const tensor::Tensor& logits,
                          const std::vector<std::size_t>& labels) {
  FEDML_CHECK(logits.rows() == labels.size(), "one label per row required");
  FEDML_CHECK(logits.cols() == classes_, "logit width must match class count");
  const auto pred = tensor::argmax_rows(logits);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    FEDML_CHECK(labels[i] < classes_, "label out of range");
    counts_[labels[i] * classes_ + pred[i]] += 1;
  }
  total_ += labels.size();
}

std::size_t ConfusionMatrix::count(std::size_t truth, std::size_t predicted) const {
  FEDML_CHECK(truth < classes_ && predicted < classes_, "class out of range");
  return counts_[truth * classes_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t c = 0; c < classes_; ++c) correct += counts_[c * classes_ + c];
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::precision(std::size_t cls) const {
  FEDML_CHECK(cls < classes_, "class out of range");
  std::size_t predicted = 0;
  for (std::size_t t = 0; t < classes_; ++t) predicted += counts_[t * classes_ + cls];
  if (predicted == 0) return 0.0;
  return static_cast<double>(counts_[cls * classes_ + cls]) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::recall(std::size_t cls) const {
  FEDML_CHECK(cls < classes_, "class out of range");
  std::size_t actual = 0;
  for (std::size_t p = 0; p < classes_; ++p) actual += counts_[cls * classes_ + p];
  if (actual == 0) return 0.0;
  return static_cast<double>(counts_[cls * classes_ + cls]) /
         static_cast<double>(actual);
}

double ConfusionMatrix::f1(std::size_t cls) const {
  const double p = precision(cls);
  const double r = recall(cls);
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double ConfusionMatrix::macro_f1() const {
  double sum = 0.0;
  for (std::size_t c = 0; c < classes_; ++c) sum += f1(c);
  return sum / static_cast<double>(classes_);
}

}  // namespace fedml::nn
