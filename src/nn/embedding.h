#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor.h"

namespace fedml::util {
class Rng;
}

namespace fedml::nn {

/// Frozen token-embedding table, standing in for the pretrained GloVe
/// embeddings the paper uses for Sent140. The table is *not* a trainable
/// parameter (the paper freezes GloVe too), so sequences are featurized once
/// up front: a sequence of token ids becomes the mean of its embeddings.
class FrozenEmbedding {
 public:
  FrozenEmbedding(std::size_t vocab, std::size_t dim, tensor::Tensor table);

  /// iid N(0, 1/sqrt(dim)) table — a deterministic stand-in for GloVe.
  static FrozenEmbedding random(std::size_t vocab, std::size_t dim, util::Rng& rng);

  [[nodiscard]] std::size_t vocab() const { return vocab_; }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] const tensor::Tensor& table() const { return table_; }

  /// Mean-pool the embeddings of one token sequence into a 1×dim row.
  [[nodiscard]] tensor::Tensor featurize(const std::vector<std::size_t>& tokens) const;

  /// Featurize a batch of sequences into a B×dim matrix.
  [[nodiscard]] tensor::Tensor featurize_batch(
      const std::vector<std::vector<std::size_t>>& sequences) const;

 private:
  std::size_t vocab_;
  std::size_t dim_;
  tensor::Tensor table_;  // vocab×dim
};

/// Trainable embedding-based ranking model for the federated recommendation
/// workload (each user = one meta-learning task):
///
///   e_i = ItemTable[item]          (trainable, shared across users)
///   u   = user taste vector        (trainable 1×dim; the meta-init learns
///                                   the population prior, per-user
///                                   adaptation specializes it at serving)
///   score = <e_i, u> + b_i                        (dot head, hidden = 0)
///   score = MLP([e_i ⊙ u, e_i]) + b_i            (MLP head, hidden > 0)
///
/// Input rows carry the item id in column 0 (as a double; remaining columns
/// are ignored), and the output is 2-class logits [0|dislike, score|like] so
/// the model composes with the existing softmax cross-entropy loss, accuracy
/// metrics, and — because the embedding lookup is an exactly differentiable
/// gather — the second-order MAML meta-gradient.
///
/// Parameter order: [item_table (items×dim), user (1×dim),
///                   item_bias (items×1), then MLP head params if any].
class RecRanker : public Module {
 public:
  /// `hidden == 0` selects the dot-product head.
  RecRanker(std::size_t num_items, std::size_t dim, std::size_t hidden = 0);

  [[nodiscard]] std::vector<ParamShape> param_shapes() const override;
  [[nodiscard]] autodiff::Var forward(const ParamList& params,
                                      const autodiff::Var& x) const override;
  /// Item table rows get N(0, 1/sqrt(dim)) (row norm ≈ 1 independent of the
  /// catalogue size); user vector and biases start at zero.
  [[nodiscard]] ParamList init_params(util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t num_items() const { return num_items_; }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] std::size_t hidden() const { return hidden_; }

 private:
  std::size_t num_items_;
  std::size_t dim_;
  std::size_t hidden_;  ///< 0 = dot head
};

/// RecRanker factory mirroring make_mlp/make_cnn.
std::shared_ptr<Module> make_rec_ranker(std::size_t num_items, std::size_t dim,
                                        std::size_t hidden = 0);

}  // namespace fedml::nn
