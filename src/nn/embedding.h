#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace fedml::util {
class Rng;
}

namespace fedml::nn {

/// Frozen token-embedding table, standing in for the pretrained GloVe
/// embeddings the paper uses for Sent140. The table is *not* a trainable
/// parameter (the paper freezes GloVe too), so sequences are featurized once
/// up front: a sequence of token ids becomes the mean of its embeddings.
class FrozenEmbedding {
 public:
  FrozenEmbedding(std::size_t vocab, std::size_t dim, tensor::Tensor table);

  /// iid N(0, 1/sqrt(dim)) table — a deterministic stand-in for GloVe.
  static FrozenEmbedding random(std::size_t vocab, std::size_t dim, util::Rng& rng);

  [[nodiscard]] std::size_t vocab() const { return vocab_; }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] const tensor::Tensor& table() const { return table_; }

  /// Mean-pool the embeddings of one token sequence into a 1×dim row.
  [[nodiscard]] tensor::Tensor featurize(const std::vector<std::size_t>& tokens) const;

  /// Featurize a batch of sequences into a B×dim matrix.
  [[nodiscard]] tensor::Tensor featurize_batch(
      const std::vector<std::vector<std::size_t>>& sequences) const;

 private:
  std::size_t vocab_;
  std::size_t dim_;
  tensor::Tensor table_;  // vocab×dim
};

}  // namespace fedml::nn
