#pragma once

#include <cstddef>
#include <vector>

#include "nn/module.h"
#include "util/serialize.h"

namespace fedml::nn {

/// Fresh detached leaves holding copies of the values in `params`.
ParamList clone_leaves(const ParamList& params, bool requires_grad = true);

/// Leaves of zeros matching `shapes`.
ParamList zeros_like(const std::vector<ParamShape>& shapes);

/// Leaf result of a + s·b (pure tensor math; drops any graph history).
ParamList add_scaled(const ParamList& a, const ParamList& b, double s,
                     bool requires_grad = true);

/// Weighted average Σ w_k · lists[k] as fresh leaves — the platform's global
/// aggregation step (paper eq. (5)). Weights need not sum to one; callers
/// normalise.
ParamList weighted_average(const std::vector<ParamList>& lists,
                           const std::vector<double>& weights,
                           bool requires_grad = true);

/// l2 distance between two parameter points: sqrt(Σ‖a_k − b_k‖²).
double param_distance(const ParamList& a, const ParamList& b);

/// l2 norm sqrt(Σ‖a_k‖²).
double param_norm(const ParamList& a);

/// Flatten all parameter values into a single 1×N tensor (row-major concat).
tensor::Tensor flatten(const ParamList& params);

/// Inverse of flatten given the shapes.
ParamList unflatten(const tensor::Tensor& flat, const std::vector<ParamShape>& shapes,
                    bool requires_grad = true);

/// Differentiable SGD step producing graph nodes φ_k = θ_k − lr·g_k. Used for
/// the MAML inner step: the returned Vars carry history through both θ and g.
ParamList sgd_step_graph(const ParamList& params, const ParamList& grads, double lr);

/// Non-differentiable SGD step producing fresh leaves (outer/meta updates).
ParamList sgd_step_leaf(const ParamList& params, const ParamList& grads, double lr);

/// Serialize parameter values (shape-prefixed) — the simulated uplink format.
void serialize(const ParamList& params, util::ByteWriter& w);

/// Deserialize a parameter list previously written by `serialize`.
ParamList deserialize(util::ByteReader& r, bool requires_grad = true);

/// Exact wire size of `serialize(params)` in bytes, for comm accounting.
std::size_t serialized_size_bytes(const ParamList& params);

}  // namespace fedml::nn
