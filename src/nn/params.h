#pragma once

#include <cstddef>
#include <vector>

#include "nn/module.h"
#include "util/serialize.h"

namespace fedml::nn {

/// Fresh detached leaves holding copies of the values in `params`.
ParamList clone_leaves(const ParamList& params, bool requires_grad = true);

/// Leaves of zeros matching `shapes`.
ParamList zeros_like(const std::vector<ParamShape>& shapes);

/// Leaf result of a + s·b (pure tensor math; drops any graph history).
ParamList add_scaled(const ParamList& a, const ParamList& b, double s,
                     bool requires_grad = true);

/// Weighted average Σ w_k · lists[k] as fresh leaves — the platform's global
/// aggregation step (paper eq. (5)). Weights need not sum to one; callers
/// normalise.
///
/// The sum is evaluated with the CANONICAL PAIRWISE ASSOCIATION (recursive
/// halving at mid = n/2, see `pairwise_sum`), not a left fold. Every
/// aggregation path in the repo — in-process platform, async simulator, TCP
/// platform server, hierarchical root — reduces in this one shape, which is
/// what makes a 2^k-leaf aggregation tree over contiguous equal shards
/// bit-identical to a flat merge of the same fleet.
ParamList weighted_average(const std::vector<ParamList>& lists,
                           const std::vector<double>& weights,
                           bool requires_grad = true);

/// Fresh leaves of s · params (pure tensor math; drops graph history).
ParamList scale(const ParamList& params, double s, bool requires_grad = true);

/// Σ lists[k] with the canonical pairwise association: sum(lo, hi) =
/// sum(lo, mid) + sum(mid, hi) at mid = lo + (hi − lo)/2, single element at
/// the base. A partition of the inputs into contiguous halves therefore
/// reduces to exactly the same floating-point value when each half is summed
/// first and the two partials are added — the associativity invariant the
/// hierarchical platform tree relies on.
ParamList pairwise_sum(const std::vector<ParamList>& lists,
                       bool requires_grad = true);

/// Scalar counterpart of `pairwise_sum` (same association, same invariant);
/// the platforms reduce aggregation-weight mass with it.
double pairwise_sum(const std::vector<double>& values);

/// l2 distance between two parameter points: sqrt(Σ‖a_k − b_k‖²).
double param_distance(const ParamList& a, const ParamList& b);

/// l2 norm sqrt(Σ‖a_k‖²).
double param_norm(const ParamList& a);

/// Flatten all parameter values into a single 1×N tensor (row-major concat).
tensor::Tensor flatten(const ParamList& params);

/// Inverse of flatten given the shapes.
ParamList unflatten(const tensor::Tensor& flat, const std::vector<ParamShape>& shapes,
                    bool requires_grad = true);

/// Differentiable SGD step producing graph nodes φ_k = θ_k − lr·g_k. Used for
/// the MAML inner step: the returned Vars carry history through both θ and g.
ParamList sgd_step_graph(const ParamList& params, const ParamList& grads, double lr);

/// Non-differentiable SGD step producing fresh leaves (outer/meta updates).
ParamList sgd_step_leaf(const ParamList& params, const ParamList& grads, double lr);

/// Serialize parameter values (shape-prefixed) — the simulated uplink format.
void serialize(const ParamList& params, util::ByteWriter& w);

/// Deserialize a parameter list previously written by `serialize`.
ParamList deserialize(util::ByteReader& r, bool requires_grad = true);

/// Exact wire size of `serialize(params)` in bytes, for comm accounting.
std::size_t serialized_size_bytes(const ParamList& params);

}  // namespace fedml::nn
