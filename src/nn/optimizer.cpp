#include "nn/optimizer.h"

#include <cmath>
#include <utility>

#include "kern/elementwise.h"
#include "nn/params.h"
#include "util/error.h"

namespace fedml::nn {

using tensor::Tensor;

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  FEDML_CHECK(lr > 0.0, "Sgd: learning rate must be positive");
  FEDML_CHECK(momentum >= 0.0 && momentum < 1.0, "Sgd: momentum must be in [0,1)");
}

ParamList Sgd::step(const ParamList& params, const ParamList& grads) {
  FEDML_CHECK(params.size() == grads.size(), "Sgd: arity mismatch");
  if (momentum_ == 0.0) {
    return sgd_step_leaf(params, grads, lr_);
  }
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const auto& p : params)
      velocity_.emplace_back(p.value().rows(), p.value().cols());
  }
  FEDML_CHECK(velocity_.size() == params.size(), "Sgd: state arity changed");
  ParamList next;
  next.reserve(params.size());
  for (std::size_t k = 0; k < params.size(); ++k) {
    // In-place fused updates; each per-element expression is identical to
    // the tensor-temporary chain it replaced, so results are bit-for-bit.
    kern::decay_add(velocity_[k].size(), momentum_, grads[k].value().data(),
                    velocity_[k].data());
    next.emplace_back(tensor::scale_add(params[k].value(), velocity_[k], -lr_),
                      /*requires_grad=*/true);
  }
  return next;
}

std::string Sgd::name() const {
  return momentum_ == 0.0 ? "SGD" : "SGD(momentum)";
}

Adam::Adam(double lr, double beta1, double beta2, double epsilon)
    : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {
  FEDML_CHECK(lr > 0.0, "Adam: learning rate must be positive");
  FEDML_CHECK(beta1 >= 0.0 && beta1 < 1.0 && beta2 >= 0.0 && beta2 < 1.0,
              "Adam: betas must be in [0,1)");
}

void Adam::reset() {
  t_ = 0;
  m_.clear();
  v_.clear();
}

ParamList Adam::step(const ParamList& params, const ParamList& grads) {
  FEDML_CHECK(params.size() == grads.size(), "Adam: arity mismatch");
  if (m_.empty()) {
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (const auto& p : params) {
      m_.emplace_back(p.value().rows(), p.value().cols());
      v_.emplace_back(p.value().rows(), p.value().cols());
    }
  }
  FEDML_CHECK(m_.size() == params.size(), "Adam: state arity changed");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));

  ParamList next;
  next.reserve(params.size());
  for (std::size_t k = 0; k < params.size(); ++k) {
    const Tensor& g = grads[k].value();
    kern::ema_update(g.size(), beta1_, g.data(), m_[k].data());
    kern::ema_update_sq(g.size(), beta2_, g.data(), v_[k].data());
    Tensor stepped(g.rows(), g.cols());
    kern::adam_step(g.size(), params[k].value().data(), m_[k].data(),
                    v_[k].data(), bc1, bc2, lr_, epsilon_, stepped.data());
    next.emplace_back(std::move(stepped), /*requires_grad=*/true);
  }
  return next;
}

std::string Adam::name() const { return "Adam"; }

std::unique_ptr<Optimizer> make_optimizer(OptimizerKind kind, double lr) {
  switch (kind) {
    case OptimizerKind::kSgd: return std::make_unique<Sgd>(lr);
    case OptimizerKind::kSgdMomentum: return std::make_unique<Sgd>(lr, 0.9);
    case OptimizerKind::kAdam: return std::make_unique<Adam>(lr);
  }
  FEDML_THROW("unknown optimizer kind");
}

}  // namespace fedml::nn
