#include "nn/loss.h"

#include <cmath>

#include "autodiff/ops.h"
#include "util/error.h"

namespace fedml::nn {

using autodiff::Var;
namespace ops = autodiff::ops;
using tensor::Tensor;

Var softmax_cross_entropy(const Var& logits, const std::vector<std::size_t>& labels) {
  FEDML_CHECK(labels.size() == logits.rows(),
              "softmax_cross_entropy: one label per row required");
  const Var lse = ops::logsumexp_rows(logits);           // B×1
  const Var picked = ops::gather_cols(logits, labels);   // B×1
  return ops::mean(ops::sub(lse, picked));
}

Var mse_loss(const Var& pred, const Tensor& target) {
  FEDML_CHECK(pred.value().same_shape(target), "mse_loss: shape mismatch");
  const Var diff = ops::sub(pred, ops::constant(target));
  return ops::mean(ops::square(diff));
}

double accuracy(const Tensor& logits, const std::vector<std::size_t>& labels) {
  FEDML_CHECK(labels.size() == logits.rows(), "accuracy: one label per row");
  if (labels.empty()) return 0.0;
  const auto pred = tensor::argmax_rows(logits);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    if (pred[i] == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor out = logits;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    double m = out(i, 0);
    for (std::size_t j = 1; j < out.cols(); ++j) m = std::max(m, out(i, j));
    double z = 0.0;
    for (std::size_t j = 0; j < out.cols(); ++j) {
      out(i, j) = std::exp(out(i, j) - m);
      z += out(i, j);
    }
    for (std::size_t j = 0; j < out.cols(); ++j) out(i, j) /= z;
  }
  return out;
}

}  // namespace fedml::nn
