#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "autodiff/ops.h"
#include "autodiff/var.h"

namespace fedml::util {
class Rng;
}

namespace fedml::nn {

/// Ordered list of parameter tensors (as autodiff leaves or graph nodes).
/// Models are *functional*: `forward(params, x)` evaluates the model at any
/// parameter point — in particular at the MAML-adapted φ(θ), which is a graph
/// node rather than a stored parameter. This is what lets the meta-gradient
/// flow through the inner adaptation step.
using ParamList = std::vector<autodiff::Var>;

/// Shape of one parameter tensor.
struct ParamShape {
  std::size_t rows = 0;
  std::size_t cols = 0;
};

/// Base class for all models/layers.
class Module {
 public:
  virtual ~Module() = default;

  /// Shapes of the parameter tensors this module consumes, in order.
  [[nodiscard]] virtual std::vector<ParamShape> param_shapes() const = 0;

  /// Forward pass at explicit parameters. `x` is a batch (B×D) Var, usually
  /// a constant wrapping the input data.
  [[nodiscard]] virtual autodiff::Var forward(const ParamList& params,
                                              const autodiff::Var& x) const = 0;

  /// Draw a fresh initialization (default: He/Glorot-flavoured normal for
  /// matrices, zeros for 1×C rows, which we treat as biases).
  [[nodiscard]] virtual ParamList init_params(util::Rng& rng) const;

  /// Total scalar parameter count.
  [[nodiscard]] std::size_t num_scalars() const;

  /// Human-readable description for logs.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Affine layer: y = xW + b with W (in×out) and b (1×out).
class Linear : public Module {
 public:
  Linear(std::size_t in, std::size_t out, bool bias = true);

  [[nodiscard]] std::vector<ParamShape> param_shapes() const override;
  [[nodiscard]] autodiff::Var forward(const ParamList& params,
                                      const autodiff::Var& x) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }

 private:
  std::size_t in_;
  std::size_t out_;
  bool bias_;
};

/// Parameter-free elementwise nonlinearity.
class Activation : public Module {
 public:
  enum class Kind { kRelu, kTanh, kSigmoid };

  explicit Activation(Kind kind) : kind_(kind) {}

  [[nodiscard]] std::vector<ParamShape> param_shapes() const override { return {}; }
  [[nodiscard]] autodiff::Var forward(const ParamList& params,
                                      const autodiff::Var& x) const override;
  [[nodiscard]] std::string name() const override;

 private:
  Kind kind_;
};

/// 2-D convolution over flattened side×side images (valid padding, stride
/// 1): `filters` independent k×k kernels, each with a scalar bias; channel
/// outputs are concatenated, so B×(side²) → B×(filters·(side−k+1)²).
/// Exactly differentiable to any order (the backward is itself built from
/// convolution ops), so it composes with the second-order MAML machinery
/// like every other layer.
class Conv2d : public Module {
 public:
  Conv2d(std::size_t side, std::size_t kernel, std::size_t filters = 1);

  [[nodiscard]] std::vector<ParamShape> param_shapes() const override;
  [[nodiscard]] autodiff::Var forward(const ParamList& params,
                                      const autodiff::Var& x) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::size_t out_side() const { return side_ - kernel_ + 1; }

 private:
  std::size_t side_;
  std::size_t kernel_;
  std::size_t filters_;
};

/// Sequential container; concatenates the children's parameter lists.
class Sequential : public Module {
 public:
  explicit Sequential(std::vector<std::shared_ptr<Module>> layers);

  [[nodiscard]] std::vector<ParamShape> param_shapes() const override;
  [[nodiscard]] autodiff::Var forward(const ParamList& params,
                                      const autodiff::Var& x) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const std::vector<std::shared_ptr<Module>>& layers() const {
    return layers_;
  }

 private:
  std::vector<std::shared_ptr<Module>> layers_;
};

/// softmax-regression: a single affine layer producing class logits — the
/// convex model the paper uses for Synthetic and MNIST experiments.
std::shared_ptr<Module> make_softmax_regression(std::size_t in, std::size_t classes);

/// Multi-layer perceptron with the given hidden widths and ReLU activations,
/// ending in an affine layer producing class logits.
std::shared_ptr<Module> make_mlp(std::size_t in, const std::vector<std::size_t>& hidden,
                                 std::size_t classes);

/// Small CNN for flattened side×side images: Conv2d(kernel, filters) →
/// ReLU → Linear(filters·(side−kernel+1)², classes).
std::shared_ptr<Module> make_cnn(std::size_t side, std::size_t kernel,
                                 std::size_t classes, std::size_t filters = 4);

}  // namespace fedml::nn
