#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"
#include "theory/bounds.h"

namespace fedml::util {
class Rng;
}

namespace fedml::theory {

/// Quadratic task L_i(θ) = ½ Σ_k a_k (θ_k − c_k)² with diagonal curvature.
/// Every quantity of the paper's analysis is available in closed form, which
/// makes this the ground-truth testbed for the convergence theory.
struct QuadraticTask {
  tensor::Tensor curvature;  ///< d×1 diagonal of A (all entries > 0)
  tensor::Tensor center;     ///< d×1 minimizer c

  [[nodiscard]] double loss(const tensor::Tensor& theta) const;
  [[nodiscard]] tensor::Tensor gradient(const tensor::Tensor& theta) const;
  /// One-step adapted point φ = θ − α∇L(θ).
  [[nodiscard]] tensor::Tensor adapted(const tensor::Tensor& theta, double alpha) const;
  /// Exact meta-objective G_i(θ) = L_i(φ_i(θ)).
  [[nodiscard]] double meta_loss(const tensor::Tensor& theta, double alpha) const;
  /// Exact meta-gradient ∇G_i(θ) = (I − αA) A (I − αA)(θ − c).
  [[nodiscard]] tensor::Tensor meta_gradient(const tensor::Tensor& theta,
                                             double alpha) const;
};

/// A weighted federation of quadratic tasks.
class QuadraticFederation {
 public:
  QuadraticFederation(std::vector<QuadraticTask> tasks, std::vector<double> weights);

  /// Federation where every node shares the curvature diagonal `a` but has
  /// its own center c_i ~ N(0, spread²) per coordinate. With shared
  /// curvature, Assumption 4 holds globally with exact constants:
  /// δ_i = ‖A(c̄ − c_i)‖ and σ_i = 0.
  static QuadraticFederation shared_curvature(std::size_t nodes, std::size_t dim,
                                              double mu, double smooth_h,
                                              double center_spread, util::Rng& rng);

  /// Federation with per-node curvature diagonals drawn uniformly in
  /// [mu, smooth_h] in addition to spread-out centers. With heterogeneous
  /// curvature the per-block local dynamics differ across nodes, so the
  /// multiple-local-update error term of Theorem 2 is strictly positive —
  /// this is the testbed for the T0 trade-off.
  static QuadraticFederation heterogeneous(std::size_t nodes, std::size_t dim,
                                           double mu, double smooth_h,
                                           double center_spread, util::Rng& rng);

  [[nodiscard]] std::size_t num_nodes() const { return tasks_.size(); }
  [[nodiscard]] std::size_t dim() const { return tasks_[0].center.rows(); }
  [[nodiscard]] const std::vector<QuadraticTask>& tasks() const { return tasks_; }
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }

  /// Weighted meta-objective G(θ).
  [[nodiscard]] double global_meta_loss(const tensor::Tensor& theta,
                                        double alpha) const;
  /// Exact minimizer θ* of G (coordinate-wise solve; diagonal curvature).
  [[nodiscard]] tensor::Tensor meta_minimizer(double alpha) const;

  /// Exact Assumption-1..4 constants. δ_i are exact for shared curvature;
  /// for heterogeneous curvature they are measured over the ball of radius
  /// `radius` around the origin. B (the gradient bound) is likewise taken
  /// over that ball.
  [[nodiscard]] AssumptionConstants constants(double radius) const;

  /// Run Algorithm 1 on the closed forms (no autodiff): T iterations, T0
  /// local steps, rates α/β. Returns G(θ^t) − G(θ*) after each aggregation.
  struct SimResult {
    std::vector<double> gap;        ///< per-aggregation optimality gap
    tensor::Tensor theta;           ///< final iterate
    double max_iterate_norm = 0.0;  ///< for post-hoc B estimation
  };
  [[nodiscard]] SimResult simulate_fedml(const tensor::Tensor& theta0, double alpha,
                                         double beta, std::size_t total_iterations,
                                         std::size_t local_steps) const;

 private:
  std::vector<QuadraticTask> tasks_;
  std::vector<double> weights_;
};

}  // namespace fedml::theory
