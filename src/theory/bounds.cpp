#include "theory/bounds.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace fedml::theory {

namespace {
void check_weights(const AssumptionConstants& c) {
  FEDML_CHECK(c.delta.size() == c.weights.size() && c.sigma.size() == c.weights.size(),
              "delta/sigma/weights must have one entry per node");
}
}  // namespace

double AssumptionConstants::delta_bar() const {
  double s = 0.0;
  for (std::size_t i = 0; i < delta.size(); ++i) s += weights[i] * delta[i];
  return s;
}

double AssumptionConstants::sigma_bar() const {
  double s = 0.0;
  for (std::size_t i = 0; i < sigma.size(); ++i) s += weights[i] * sigma[i];
  return s;
}

double AssumptionConstants::tau() const {
  double s = 0.0;
  for (std::size_t i = 0; i < delta.size(); ++i)
    s += weights[i] * delta[i] * sigma[i];
  return s;
}

double alpha_max(const AssumptionConstants& c) {
  FEDML_CHECK(c.mu > 0.0, "alpha_max requires strong convexity (mu > 0)");
  const double denom = 2.0 * c.mu * c.smooth_h + c.rho * c.grad_bound;
  const double first = denom > 0.0 ? c.mu / denom : 1.0 / c.mu;
  return std::min(first, 1.0 / c.mu);
}

Lemma1Constants lemma1_constants(const AssumptionConstants& c, double alpha) {
  Lemma1Constants l;
  const double one_minus_ah = 1.0 - alpha * c.smooth_h;
  const double one_minus_am = 1.0 - alpha * c.mu;
  l.mu_prime = c.mu * one_minus_ah * one_minus_ah - alpha * c.rho * c.grad_bound;
  l.h_prime = c.smooth_h * one_minus_am * one_minus_am + alpha * c.rho * c.grad_bound;
  return l;
}

double beta_max(const Lemma1Constants& l) {
  FEDML_CHECK(l.mu_prime > 0.0 && l.h_prime > 0.0,
              "beta_max requires positive Lemma-1 constants");
  return std::min(1.0 / (2.0 * l.mu_prime), 2.0 / l.h_prime);
}

double theorem1_bound(const AssumptionConstants& c, double alpha, std::size_t node,
                      double big_c) {
  check_weights(c);
  FEDML_CHECK(node < c.delta.size(), "theorem1_bound: node out of range");
  return c.delta[node] +
         alpha * big_c *
             (c.smooth_h * c.delta[node] + c.grad_bound * c.sigma[node] + c.tau());
}

double h_function(double alpha_prime, double beta, double h_prime, std::size_t x) {
  const double growth = std::pow(1.0 + beta * h_prime, static_cast<double>(x)) - 1.0;
  return alpha_prime / (beta * h_prime) * growth -
         alpha_prime * static_cast<double>(x);
}

Theorem2Terms theorem2_terms(const AssumptionConstants& c, double alpha, double beta,
                             std::size_t t0, double big_c) {
  check_weights(c);
  FEDML_CHECK(t0 >= 1, "theorem2_terms: T0 must be >= 1");
  FEDML_CHECK(alpha > 0.0 && alpha <= alpha_max(c) + 1e-12,
              "alpha violates the Lemma 1 window");
  const Lemma1Constants l = lemma1_constants(c, alpha);
  FEDML_CHECK(l.mu_prime > 0.0, "alpha too large: G not provably strongly convex");

  Theorem2Terms t;
  t.xi = 1.0 - 2.0 * beta * l.mu_prime * (1.0 - l.h_prime * beta / 2.0);
  FEDML_CHECK(t.xi > 0.0 && t.xi < 1.0, "beta violates the Theorem 2 rate window");

  const double delta = c.delta_bar();
  const double sigma = c.sigma_bar();
  t.alpha_prime = beta * (delta + alpha * big_c *
                                      (c.smooth_h * delta + c.grad_bound * sigma +
                                       c.tau()));
  t.h_t0 = h_function(t.alpha_prime, beta, l.h_prime, t0);
  const double geo = 1.0 - std::pow(t.xi, static_cast<double>(t0));
  t.error_term = geo > 0.0
                     ? c.grad_bound * (1.0 - alpha * c.mu) / geo * t.h_t0
                     : 0.0;
  return t;
}

double theorem2_bound(const Theorem2Terms& terms, double initial_gap, std::size_t t) {
  return std::pow(terms.xi, static_cast<double>(t)) * initial_gap + terms.error_term;
}

}  // namespace fedml::theory
