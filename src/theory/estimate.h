#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "nn/module.h"
#include "theory/bounds.h"

namespace fedml::util {
class Rng;
}

namespace fedml::theory {

/// Empirical estimation of the paper's assumption constants for an ARBITRARY
/// model + federation, by sampling the parameter space:
///
///   B    — max ‖∇L_i(θ)‖ over sampled θ and nodes,
///   H    — max ‖∇L_i(θ) − ∇L_i(θ')‖ / ‖θ − θ'‖ over sampled pairs,
///   μ    — min ⟨∇L_i(θ) − ∇L_i(θ'), θ − θ'⟩ / ‖θ − θ'‖² (may be ≤ 0 for
///          non-convex models — a diagnostic, not a certificate),
///   ρ    — max ‖(∇²L_i(θ) − ∇²L_i(θ'))v‖ / (‖θ − θ'‖·‖v‖) via
///          Hessian-vector products from double backward,
///   δ_i  — max ‖∇L_i(θ) − ∇L_w(θ)‖ over sampled θ,
///   σ_i  — max ‖(∇²L_i(θ) − ∇²L_w(θ))v‖ / ‖v‖ over sampled (θ, v).
///
/// All Hessian quantities use exact HVPs (never materialized Hessians), so
/// the procedure scales to any model the autodiff engine can express.
/// Estimates are LOWER bounds on the true suprema (sampling cannot prove an
/// upper bound); they are meant to rank federations by heterogeneity and to
/// instantiate the Theorem 2 terms with data-driven values.
struct EstimateConfig {
  std::size_t parameter_samples = 8;  ///< sampled θ points
  std::size_t pair_samples = 8;       ///< sampled (θ, θ') pairs
  double radius = 1.0;                ///< sampling ball radius around θ0
  std::uint64_t seed = 1234;
};

/// Estimate the constants over the given nodes (local datasets + weights
/// ω_i). θ0 anchors the sampling ball.
AssumptionConstants estimate_constants(const nn::Module& model,
                                       const nn::ParamList& theta0,
                                       const std::vector<data::Dataset>& datasets,
                                       const std::vector<double>& weights,
                                       const EstimateConfig& config);

/// Exact Hessian-vector product (∇²L(θ)·v) of the mean empirical loss, via
/// double backward. Exposed for tests and for the estimators above.
nn::ParamList hessian_vector_product(const nn::Module& model,
                                     const nn::ParamList& theta,
                                     const nn::ParamList& v,
                                     const data::Dataset& d);

/// Theorem 3 upper bound on the target adaptation gap:
///   αHε + H(1+αH)ε_c + H(1+αH)·‖θ_t* − θ_c*‖.
double theorem3_bound(double smooth_h, double alpha, double epsilon,
                      double epsilon_c, double surrogate_distance);

}  // namespace fedml::theory
