#include "theory/quadratic.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace fedml::theory {

using tensor::Tensor;

double QuadraticTask::loss(const Tensor& theta) const {
  double s = 0.0;
  for (std::size_t k = 0; k < theta.rows(); ++k) {
    const double d = theta(k, 0) - center(k, 0);
    s += 0.5 * curvature(k, 0) * d * d;
  }
  return s;
}

Tensor QuadraticTask::gradient(const Tensor& theta) const {
  Tensor g(theta.rows(), 1);
  for (std::size_t k = 0; k < theta.rows(); ++k)
    g(k, 0) = curvature(k, 0) * (theta(k, 0) - center(k, 0));
  return g;
}

Tensor QuadraticTask::adapted(const Tensor& theta, double alpha) const {
  return theta - gradient(theta) * alpha;
}

double QuadraticTask::meta_loss(const Tensor& theta, double alpha) const {
  return loss(adapted(theta, alpha));
}

Tensor QuadraticTask::meta_gradient(const Tensor& theta, double alpha) const {
  // ∇G_i = (I − αA) A (I − αA)(θ − c); everything is diagonal.
  Tensor g(theta.rows(), 1);
  for (std::size_t k = 0; k < theta.rows(); ++k) {
    const double a = curvature(k, 0);
    const double m = (1.0 - alpha * a);
    g(k, 0) = m * a * m * (theta(k, 0) - center(k, 0));
  }
  return g;
}

QuadraticFederation::QuadraticFederation(std::vector<QuadraticTask> tasks,
                                         std::vector<double> weights)
    : tasks_(std::move(tasks)), weights_(std::move(weights)) {
  FEDML_CHECK(!tasks_.empty(), "quadratic federation needs at least one task");
  FEDML_CHECK(tasks_.size() == weights_.size(), "one weight per task required");
  double s = 0.0;
  for (const auto w : weights_) s += w;
  FEDML_CHECK(std::abs(s - 1.0) < 1e-9, "weights must sum to one");
  for (const auto& t : tasks_) {
    FEDML_CHECK(t.curvature.rows() == tasks_[0].curvature.rows(),
                "tasks must share dimensionality");
    for (std::size_t k = 0; k < t.curvature.rows(); ++k)
      FEDML_CHECK(t.curvature(k, 0) > 0.0, "curvature must be positive");
  }
}

QuadraticFederation QuadraticFederation::shared_curvature(
    std::size_t nodes, std::size_t dim, double mu, double smooth_h,
    double center_spread, util::Rng& rng) {
  FEDML_CHECK(mu > 0.0 && smooth_h >= mu, "need 0 < mu <= H");
  Tensor a(dim, 1);
  for (std::size_t k = 0; k < dim; ++k) {
    // Curvatures interpolate [μ, H], hitting both ends exactly.
    const double frac = dim == 1 ? 0.0
                                 : static_cast<double>(k) /
                                       static_cast<double>(dim - 1);
    a(k, 0) = mu + (smooth_h - mu) * frac;
  }
  std::vector<QuadraticTask> tasks;
  tasks.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    Tensor c(dim, 1);
    for (std::size_t k = 0; k < dim; ++k) c(k, 0) = rng.normal(0.0, center_spread);
    tasks.push_back({a, std::move(c)});
  }
  std::vector<double> w(nodes, 1.0 / static_cast<double>(nodes));
  return {std::move(tasks), std::move(w)};
}

QuadraticFederation QuadraticFederation::heterogeneous(
    std::size_t nodes, std::size_t dim, double mu, double smooth_h,
    double center_spread, util::Rng& rng) {
  FEDML_CHECK(mu > 0.0 && smooth_h >= mu, "need 0 < mu <= H");
  std::vector<QuadraticTask> tasks;
  tasks.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    Tensor a(dim, 1);
    Tensor c(dim, 1);
    for (std::size_t k = 0; k < dim; ++k) {
      a(k, 0) = rng.uniform(mu, smooth_h);
      c(k, 0) = rng.normal(0.0, center_spread);
    }
    tasks.push_back({std::move(a), std::move(c)});
  }
  std::vector<double> w(nodes, 1.0 / static_cast<double>(nodes));
  return {std::move(tasks), std::move(w)};
}

double QuadraticFederation::global_meta_loss(const Tensor& theta,
                                             double alpha) const {
  double s = 0.0;
  for (std::size_t i = 0; i < tasks_.size(); ++i)
    s += weights_[i] * tasks_[i].meta_loss(theta, alpha);
  return s;
}

Tensor QuadraticFederation::meta_minimizer(double alpha) const {
  // Solve Σ ω_i M_i (θ − c_i) = 0 per coordinate: θ_k = Σ ω_i m_ik c_ik / Σ ω_i m_ik
  // with m_ik = (1 − α a_ik)² a_ik.
  const std::size_t d = dim();
  Tensor theta(d, 1);
  for (std::size_t k = 0; k < d; ++k) {
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      const double a = tasks_[i].curvature(k, 0);
      const double m = (1.0 - alpha * a);
      const double mik = m * a * m;
      num += weights_[i] * mik * tasks_[i].center(k, 0);
      den += weights_[i] * mik;
    }
    FEDML_CHECK(den > 0.0, "meta objective is degenerate along a coordinate");
    theta(k, 0) = num / den;
  }
  return theta;
}

AssumptionConstants QuadraticFederation::constants(double radius) const {
  AssumptionConstants c;
  c.weights = weights_;
  const std::size_t d = dim();

  double mu = 1e300, smooth_h = 0.0;
  for (const auto& t : tasks_) {
    for (std::size_t k = 0; k < d; ++k) {
      mu = std::min(mu, t.curvature(k, 0));
      smooth_h = std::max(smooth_h, t.curvature(k, 0));
    }
  }
  c.mu = mu;
  c.smooth_h = smooth_h;
  c.rho = 0.0;  // Hessians are constant

  // Weighted-average curvature/center (the "L_w" loss is Σ ω_i L_i, whose
  // gradient is Σ ω_i A_i (θ − c_i)).
  Tensor a_bar(d, 1), ac_bar(d, 1);
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    for (std::size_t k = 0; k < d; ++k) {
      a_bar(k, 0) += weights_[i] * tasks_[i].curvature(k, 0);
      ac_bar(k, 0) += weights_[i] * tasks_[i].curvature(k, 0) * tasks_[i].center(k, 0);
    }
  }

  // B: max gradient norm over the ball ‖θ‖ ≤ radius:
  // ‖A_i(θ − c_i)‖ ≤ H(radius + ‖c_i‖).
  double b = 0.0;
  for (const auto& t : tasks_) {
    double cn = 0.0;
    for (std::size_t k = 0; k < d; ++k) cn += t.center(k, 0) * t.center(k, 0);
    b = std::max(b, smooth_h * (radius + std::sqrt(cn)));
  }
  c.grad_bound = b;

  // δ_i, σ_i. For heterogeneous curvature the gradient difference grows with
  // ‖θ‖, so take the sup over the same ball; for shared curvature the θ term
  // vanishes and δ_i is exact.
  c.delta.resize(tasks_.size());
  c.sigma.resize(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    double sig = 0.0;
    double const_term = 0.0;  // ‖A_i c_i − Ā c̄ (weighted)‖ part
    double lin_term = 0.0;    // max_k |a_ik − ā_k| part
    for (std::size_t k = 0; k < d; ++k) {
      const double da = tasks_[i].curvature(k, 0) - a_bar(k, 0);
      sig = std::max(sig, std::abs(da));
      lin_term = std::max(lin_term, std::abs(da));
      const double dc =
          tasks_[i].curvature(k, 0) * tasks_[i].center(k, 0) - ac_bar(k, 0);
      const_term += dc * dc;
    }
    c.sigma[i] = sig;
    c.delta[i] = std::sqrt(const_term) + lin_term * radius;
  }
  return c;
}

QuadraticFederation::SimResult QuadraticFederation::simulate_fedml(
    const Tensor& theta0, double alpha, double beta, std::size_t total_iterations,
    std::size_t local_steps) const {
  FEDML_CHECK(local_steps >= 1, "T0 must be >= 1");
  SimResult out;
  const Tensor theta_star = meta_minimizer(alpha);
  const double g_star = global_meta_loss(theta_star, alpha);

  std::vector<Tensor> local(tasks_.size(), theta0);
  Tensor global = theta0;
  out.max_iterate_norm = tensor::norm(theta0);

  std::size_t t = 0;
  while (t < total_iterations) {
    const std::size_t block = std::min(local_steps, total_iterations - t);
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
      for (std::size_t s = 0; s < block; ++s) {
        local[i] -= tasks_[i].meta_gradient(local[i], alpha) * beta;
        out.max_iterate_norm = std::max(out.max_iterate_norm, tensor::norm(local[i]));
      }
    }
    t += block;
    Tensor agg(dim(), 1);
    for (std::size_t i = 0; i < tasks_.size(); ++i) agg += local[i] * weights_[i];
    global = agg;
    for (auto& l : local) l = global;
    out.gap.push_back(global_meta_loss(global, alpha) - g_star);
  }
  out.theta = global;
  return out;
}

}  // namespace fedml::theory
