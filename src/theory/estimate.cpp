#include "theory/estimate.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "autodiff/ops.h"
#include "nn/loss.h"
#include "nn/params.h"
#include "util/error.h"
#include "util/rng.h"

namespace fedml::theory {

namespace {

using autodiff::Var;
namespace ops = fedml::autodiff::ops;

/// Gradient of the mean empirical loss at θ (detached). Local helper so the
/// theory layer does not depend on the core trainers.
nn::ParamList gradient_of(const nn::Module& model, const nn::ParamList& theta,
                          const data::Dataset& d) {
  nn::ParamList leaves = nn::clone_leaves(theta, /*requires_grad=*/true);
  const Var loss =
      nn::softmax_cross_entropy(model.forward(leaves, ops::constant(d.x)), d.y);
  return autodiff::grad(loss, {leaves.begin(), leaves.end()});
}

/// Random parameter point within `radius` (l∞ per tensor entry) of θ0.
nn::ParamList sample_point(const nn::ParamList& theta0, double radius,
                           util::Rng& rng) {
  nn::ParamList out;
  out.reserve(theta0.size());
  for (const auto& p : theta0) {
    tensor::Tensor t = p.value();
    for (std::size_t i = 0; i < t.rows(); ++i)
      for (std::size_t j = 0; j < t.cols(); ++j)
        t(i, j) += rng.uniform(-radius, radius);
    out.emplace_back(std::move(t), /*requires_grad=*/false);
  }
  return out;
}

nn::ParamList random_direction(const nn::ParamList& theta0, util::Rng& rng) {
  nn::ParamList out;
  out.reserve(theta0.size());
  for (const auto& p : theta0) {
    out.emplace_back(tensor::Tensor::randn(p.rows(), p.cols(), rng),
                     /*requires_grad=*/false);
  }
  // Normalize to unit l2 norm over the whole list.
  const double n = nn::param_norm(out);
  for (auto& t : out) t = autodiff::Var(t.value() * (1.0 / n), false);
  return out;
}

double list_norm_diff(const nn::ParamList& a, const nn::ParamList& b) {
  return nn::param_distance(a, b);
}

double list_inner(const nn::ParamList& a, const nn::ParamList& b) {
  double s = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k)
    s += tensor::dot(a[k].value(), b[k].value());
  return s;
}

/// Weighted gradient of the federation loss L_w = Σ ω_i L_i at θ.
nn::ParamList weighted_gradient(const nn::Module& model,
                                const nn::ParamList& theta,
                                const std::vector<data::Dataset>& datasets,
                                const std::vector<double>& weights) {
  std::vector<nn::ParamList> grads;
  grads.reserve(datasets.size());
  for (const auto& d : datasets)
    grads.push_back(gradient_of(model, theta, d));
  return nn::weighted_average(grads, weights, /*requires_grad=*/false);
}

}  // namespace

nn::ParamList hessian_vector_product(const nn::Module& model,
                                     const nn::ParamList& theta,
                                     const nn::ParamList& v,
                                     const data::Dataset& d) {
  nn::ParamList leaves = nn::clone_leaves(theta, /*requires_grad=*/true);
  const Var x = ops::constant(d.x);
  const Var loss = nn::softmax_cross_entropy(model.forward(leaves, x), d.y);
  auto grads = autodiff::grad(loss, {leaves.begin(), leaves.end()},
                              {.create_graph = true});
  // gᵀv — a scalar whose gradient wrt θ is ∇²L·v.
  Var gv;
  for (std::size_t k = 0; k < grads.size(); ++k) {
    const Var term = ops::dot(grads[k], ops::constant(v[k].value()));
    gv = gv.defined() ? ops::add(gv, term) : term;
  }
  return autodiff::grad(gv, {leaves.begin(), leaves.end()});
}

AssumptionConstants estimate_constants(const nn::Module& model,
                                       const nn::ParamList& theta0,
                                       const std::vector<data::Dataset>& datasets,
                                       const std::vector<double>& weights,
                                       const EstimateConfig& config) {
  FEDML_CHECK(!datasets.empty() && datasets.size() == weights.size(),
              "estimate_constants: need one weight per dataset");
  util::Rng rng(config.seed);

  AssumptionConstants c;
  c.weights = weights;
  c.delta.assign(datasets.size(), 0.0);
  c.sigma.assign(datasets.size(), 0.0);
  c.mu = std::numeric_limits<double>::infinity();

  // Sampled points and directions (shared across nodes for comparability).
  std::vector<nn::ParamList> points;
  for (std::size_t s = 0; s < config.parameter_samples; ++s)
    points.push_back(sample_point(theta0, config.radius, rng));

  // ---- B and δ_i over the sampled points ---------------------------------
  for (const auto& theta : points) {
    const nn::ParamList gw = weighted_gradient(model, theta, datasets, weights);
    for (std::size_t i = 0; i < datasets.size(); ++i) {
      const nn::ParamList gi = gradient_of(model, theta, datasets[i]);
      c.grad_bound = std::max(c.grad_bound, nn::param_norm(gi));
      c.delta[i] = std::max(c.delta[i], list_norm_diff(gi, gw));
    }
  }

  // ---- σ_i via HVP with random unit directions ----------------------------
  for (const auto& theta : points) {
    const nn::ParamList v = random_direction(theta0, rng);
    std::vector<nn::ParamList> hv;
    hv.reserve(datasets.size());
    for (const auto& d : datasets)
      hv.push_back(hessian_vector_product(model, theta, v, d));
    const nn::ParamList hw = nn::weighted_average(hv, weights, false);
    for (std::size_t i = 0; i < datasets.size(); ++i)
      c.sigma[i] = std::max(c.sigma[i], list_norm_diff(hv[i], hw));
  }

  // ---- H, μ, ρ from sampled pairs -----------------------------------------
  for (std::size_t s = 0; s < config.pair_samples; ++s) {
    const nn::ParamList a = sample_point(theta0, config.radius, rng);
    const nn::ParamList b = sample_point(theta0, config.radius, rng);
    const double dist = list_norm_diff(a, b);
    if (dist < 1e-9) continue;
    const nn::ParamList v = random_direction(theta0, rng);
    for (std::size_t i = 0; i < datasets.size(); ++i) {
      const nn::ParamList ga = gradient_of(model, a, datasets[i]);
      const nn::ParamList gb = gradient_of(model, b, datasets[i]);
      nn::ParamList gdiff = nn::add_scaled(ga, gb, -1.0, false);
      c.smooth_h = std::max(c.smooth_h, nn::param_norm(gdiff) / dist);
      // Monotonicity constant along this pair.
      nn::ParamList pdiff = nn::add_scaled(a, b, -1.0, false);
      c.mu = std::min(c.mu, list_inner(gdiff, pdiff) / (dist * dist));
      // Hessian Lipschitz along this pair in direction v.
      const nn::ParamList ha = hessian_vector_product(model, a, v, datasets[i]);
      const nn::ParamList hb = hessian_vector_product(model, b, v, datasets[i]);
      c.rho = std::max(c.rho, list_norm_diff(ha, hb) / dist);
    }
  }
  if (!std::isfinite(c.mu)) c.mu = 0.0;
  return c;
}

double theorem3_bound(double smooth_h, double alpha, double epsilon,
                      double epsilon_c, double surrogate_distance) {
  FEDML_CHECK(smooth_h >= 0.0 && alpha >= 0.0, "theorem3_bound: bad H/alpha");
  const double amp = smooth_h * (1.0 + alpha * smooth_h);
  return alpha * smooth_h * epsilon + amp * epsilon_c +
         amp * surrogate_distance;
}

}  // namespace fedml::theory
