#pragma once

#include <cstddef>
#include <vector>

namespace fedml::theory {

/// The constants of Assumptions 1–4 for a federation of loss functions:
/// μ-strong convexity, H-smoothness, gradient bound B, ρ-Lipschitz Hessians,
/// and per-node dissimilarities δ_i (gradients) and σ_i (Hessians), with
/// aggregation weights ω_i.
struct AssumptionConstants {
  double mu = 0.0;
  double smooth_h = 0.0;  ///< H
  double rho = 0.0;
  double grad_bound = 0.0;  ///< B
  std::vector<double> delta;
  std::vector<double> sigma;
  std::vector<double> weights;

  /// δ = Σ ω_i δ_i.
  [[nodiscard]] double delta_bar() const;
  /// σ = Σ ω_i σ_i.
  [[nodiscard]] double sigma_bar() const;
  /// τ = Σ ω_i δ_i σ_i (Theorem 1).
  [[nodiscard]] double tau() const;
};

/// Lemma 1: largest inner rate α for which G is provably strongly convex,
/// α ≤ min{ μ/(2μH + ρB), 1/μ }.
double alpha_max(const AssumptionConstants& c);

/// Lemma 1 constants of the meta-objective G:
/// μ' = μ(1−αH)² − αρB and H' = H(1−αμ)² + αρB.
struct Lemma1Constants {
  double mu_prime = 0.0;
  double h_prime = 0.0;
};
Lemma1Constants lemma1_constants(const AssumptionConstants& c, double alpha);

/// Theorem 2: largest meta rate β, β < min{ 1/(2μ'), 2/H' }.
double beta_max(const Lemma1Constants& l);

/// Theorem 1 bound on the per-node meta-gradient dissimilarity:
/// ‖∇G_i − ∇G‖ ≤ δ_i + αC(Hδ_i + Bσ_i + τ).
double theorem1_bound(const AssumptionConstants& c, double alpha, std::size_t node,
                      double big_c = 1.0);

/// All derived quantities of Theorem 2 for a given (α, β, T0).
struct Theorem2Terms {
  double xi = 0.0;           ///< ξ = 1 − 2βμ'(1 − H'β/2)
  double alpha_prime = 0.0;  ///< α' = β[δ + αC(Hδ + Bσ + τ)]
  double h_t0 = 0.0;         ///< h(T0)
  double error_term = 0.0;   ///< B(1−αμ)/(1−ξ^{T0}) · h(T0)
};
Theorem2Terms theorem2_terms(const AssumptionConstants& c, double alpha, double beta,
                             std::size_t t0, double big_c = 1.0);

/// The full Theorem 2 right-hand side after T iterations:
/// ξ^T [G(θ0) − G(θ*)] + error_term.
double theorem2_bound(const Theorem2Terms& terms, double initial_gap, std::size_t t);

/// h(x) = (α'/(βH'))[(1+βH')^x − 1] − α'x  (error growth within a block;
/// h(1) = 0, so T0 = 1 removes the error term — Corollary 1).
double h_function(double alpha_prime, double beta, double h_prime, std::size_t x);

}  // namespace fedml::theory
