#include "obs/metrics.h"

namespace fedml::obs {

namespace {

/// Find-or-create in a name-keyed map of unique_ptrs; map nodes are stable,
/// so the returned reference outlives later insertions.
template <typename T, typename... Args>
T& intern(std::map<std::string, std::unique_ptr<T>>& map,
          const std::string& name, Args&&... args) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(name, std::make_unique<T>(std::forward<Args>(args)...))
             .first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  util::LockGuard lock(mutex_);
  return intern(counters_, name);
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  util::LockGuard lock(mutex_);
  return intern(gauges_, name);
}

SharedHistogram& MetricsRegistry::histogram(const std::string& name,
                                            Histogram::Config config) {
  util::LockGuard lock(mutex_);
  return intern(histograms_, name, std::move(config));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  util::LockGuard lock(mutex_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    s.histograms.emplace_back(name, h->snapshot());
  return s;
}

}  // namespace fedml::obs
