#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <utility>

namespace fedml::obs {

/// Time source for the telemetry layer, in seconds since an arbitrary epoch.
///
/// Every timestamp obs emits flows through one of these, so the same
/// instrumentation works on wall-clock time (serving, synchronous training)
/// and on simulated virtual time (the discrete-event `sim::AsyncPlatform`),
/// where traces become a pure function of the seed — deterministic and
/// byte-identical across runs.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual double now_s() const = 0;
};

/// Monotonic wall clock; epoch is the clock's construction.
class WallClock final : public Clock {
 public:
  WallClock() : epoch_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double now_s() const override {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Adapts any `double()` callable — e.g. a `sim::EventQueue`'s `now()` —
/// without obs depending on the simulator. The callable must outlive the
/// clock and be safe to call from whichever threads read the tracer.
class FunctionClock final : public Clock {
 public:
  explicit FunctionClock(std::function<double()> fn) : fn_(std::move(fn)) {}
  [[nodiscard]] double now_s() const override { return fn_(); }

 private:
  std::function<double()> fn_;
};

/// Manually advanced clock for tests.
class ManualClock final : public Clock {
 public:
  [[nodiscard]] double now_s() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void set(double seconds) { now_.store(seconds, std::memory_order_relaxed); }
  void advance(double seconds) {
    now_.fetch_add(seconds, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> now_{0.0};
};

}  // namespace fedml::obs
