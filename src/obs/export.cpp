#include "obs/export.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace fedml::obs {

namespace detail {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(static_cast<unsigned char>(c));
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << std::setprecision(12) << v;
  return os.str();
}

}  // namespace detail

namespace {

using detail::json_escape;
using detail::json_number;

void write_args(std::ostream& os,
                const std::vector<std::pair<std::string, double>>& args) {
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(key) << "\":" << json_number(value);
  }
}

std::ofstream open_for_write(const std::string& path) {
  std::ofstream out(path);
  FEDML_CHECK(out.good(), "cannot open '" + path + "' for writing");
  return out;
}

void write_histogram_fields(std::ostream& os, const Histogram::Snapshot& h) {
  os << "\"count\":" << h.count << ",\"sum\":" << json_number(h.sum)
     << ",\"min\":" << json_number(h.min) << ",\"max\":" << json_number(h.max)
     << ",\"mean\":" << json_number(h.mean)
     << ",\"p50\":" << json_number(h.p50) << ",\"p95\":" << json_number(h.p95)
     << ",\"p99\":" << json_number(h.p99);
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<SpanRecord>& spans) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":\"" << json_escape(s.name)
       << "\",\"cat\":\"fedml\",\"ph\":\"X\",\"pid\":0,\"tid\":" << s.track
       << ",\"ts\":" << json_number(s.start_s * 1e6)
       << ",\"dur\":" << json_number((s.end_s - s.start_s) * 1e6)
       << ",\"args\":{\"id\":" << s.id;
    if (s.parent != 0) os << ",\"parent\":" << s.parent;
    // Fleet fields only appear in distributed traces, so the sim/golden
    // byte streams are untouched.
    if (s.trace_id != 0) os << ",\"trace\":" << s.trace_id;
    if (s.remote_parent != 0) os << ",\"remote_parent\":" << s.remote_parent;
    if (!s.args.empty()) {
      os << ',';
      write_args(os, s.args);
    }
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace_file(const std::string& path,
                             const std::vector<SpanRecord>& spans) {
  auto out = open_for_write(path);
  write_chrome_trace(out, spans);
  FEDML_CHECK(out.good(), "failed writing chrome trace to '" + path + "'");
}

void write_jsonl(std::ostream& os, const std::vector<SpanRecord>& spans,
                 const MetricsSnapshot& metrics) {
  for (const auto& s : spans) {
    os << "{\"type\":\"span\",\"id\":" << s.id << ",\"parent\":" << s.parent
       << ",\"name\":\"" << json_escape(s.name) << "\",\"track\":" << s.track
       << ",\"start_s\":" << json_number(s.start_s)
       << ",\"end_s\":" << json_number(s.end_s);
    if (s.trace_id != 0) os << ",\"trace\":" << s.trace_id;
    if (s.remote_parent != 0) os << ",\"remote_parent\":" << s.remote_parent;
    os << ",\"args\":{";
    write_args(os, s.args);
    os << "}}\n";
  }
  for (const auto& [name, value] : metrics.counters) {
    os << "{\"type\":\"counter\",\"name\":\"" << json_escape(name)
       << "\",\"value\":" << value << "}\n";
  }
  for (const auto& [name, value] : metrics.gauges) {
    os << "{\"type\":\"gauge\",\"name\":\"" << json_escape(name)
       << "\",\"value\":" << json_number(value) << "}\n";
  }
  for (const auto& [name, h] : metrics.histograms) {
    os << "{\"type\":\"histogram\",\"name\":\"" << json_escape(name) << "\",";
    write_histogram_fields(os, h);
    os << "}\n";
  }
}

void write_jsonl_file(const std::string& path,
                      const std::vector<SpanRecord>& spans,
                      const MetricsSnapshot& metrics) {
  auto out = open_for_write(path);
  write_jsonl(out, spans, metrics);
  FEDML_CHECK(out.good(), "failed writing telemetry JSONL to '" + path + "'");
}

util::Table metrics_table(const MetricsSnapshot& metrics) {
  util::Table t({"metric", "kind", "value", "count", "mean", "p50", "p95",
                 "p99"});
  for (const auto& [name, value] : metrics.counters) {
    t.add_row({name, std::string("counter"),
               static_cast<std::int64_t>(value), std::string(""),
               std::string(""), std::string(""), std::string(""),
               std::string("")});
  }
  for (const auto& [name, value] : metrics.gauges) {
    t.add_row({name, std::string("gauge"), value, std::string(""),
               std::string(""), std::string(""), std::string(""),
               std::string("")});
  }
  for (const auto& [name, h] : metrics.histograms) {
    t.add_row({name, std::string("histogram"), h.sum,
               static_cast<std::int64_t>(h.count), h.mean, h.p50, h.p95,
               h.p99});
  }
  return t;
}

}  // namespace fedml::obs
