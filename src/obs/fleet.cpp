#include "obs/fleet.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <unordered_map>
#include <utility>

#include "obs/export.h"
#include "util/error.h"
#include "util/table.h"

namespace fedml::obs {

namespace {

using detail::json_escape;
using detail::json_number;

const Histogram::Snapshot* find_histogram(const ProcessTelemetry& tel,
                                          const std::string& name) {
  for (const auto& [n, h] : tel.metrics.histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

std::uint64_t find_counter(const ProcessTelemetry& tel,
                           const std::string& name) {
  for (const auto& [n, v] : tel.metrics.counters) {
    if (n == name) return v;
  }
  return 0;
}

double find_arg(const SpanRecord& span, const char* key, double fallback) {
  for (const auto& [k, v] : span.args) {
    if (k == key) return v;
  }
  return fallback;
}

}  // namespace

void FleetCollector::absorb(ProcessTelemetry telemetry) {
  util::LockGuard lock(mutex_);
  by_pid_[telemetry.pid] = std::move(telemetry);
}

std::vector<ProcessTelemetry> FleetCollector::snapshot() const {
  util::LockGuard lock(mutex_);
  std::vector<ProcessTelemetry> out;
  out.reserve(by_pid_.size());
  for (const auto& [pid, tel] : by_pid_) out.push_back(tel);
  return out;
}

std::size_t FleetCollector::origin_count() const {
  util::LockGuard lock(mutex_);
  return by_pid_.size();
}

Histogram::Snapshot merged_fleet_histogram(
    const std::vector<ProcessTelemetry>& fleet, const std::string& name) {
  const Histogram::Snapshot* first = nullptr;
  for (const auto& tel : fleet) {
    if ((first = find_histogram(tel, name)) != nullptr) break;
  }
  if (first == nullptr) return Histogram::Snapshot{};
  Histogram::Config config;
  config.bounds = first->bounds;
  config.retain_samples = true;
  Histogram merged(config);
  for (const auto& tel : fleet) {
    if (const auto* h = find_histogram(tel, name)) merged.merge(*h);
  }
  return merged.snapshot();
}

std::uint64_t summed_fleet_counter(const std::vector<ProcessTelemetry>& fleet,
                                   const std::string& name) {
  std::uint64_t total = 0;
  for (const auto& tel : fleet) total += find_counter(tel, name);
  return total;
}

void write_fleet_chrome_trace(std::ostream& os,
                              const std::vector<ProcessTelemetry>& fleet) {
  // Span-id -> owning process, for resolving remote parents. Ids are
  // 64-bit seeded draws in distributed runs, so collisions across origins
  // are not a practical concern; a duplicate keeps the first owner.
  struct Owner {
    const ProcessTelemetry* tel;
    const SpanRecord* span;
  };
  std::unordered_map<SpanId, Owner> owners;
  for (const auto& tel : fleet) {
    for (const auto& span : tel.spans) {
      owners.emplace(span.id, Owner{&tel, &span});
    }
  }

  os << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&os, &first]() -> std::ostream& {
    if (!first) os << ",";
    first = false;
    return os << "\n";
  };
  for (const auto& tel : fleet) {
    emit() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << tel.pid
           << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(tel.role)
           << "\"}}";
  }
  for (const auto& tel : fleet) {
    for (const auto& s : tel.spans) {
      emit() << "{\"name\":\"" << json_escape(s.name)
             << "\",\"cat\":\"fedml\",\"ph\":\"X\",\"pid\":" << tel.pid
             << ",\"tid\":" << s.track
             << ",\"ts\":" << json_number(s.start_s * 1e6)
             << ",\"dur\":" << json_number((s.end_s - s.start_s) * 1e6)
             << ",\"args\":{\"id\":" << s.id;
      if (s.parent != 0) os << ",\"parent\":" << s.parent;
      if (s.trace_id != 0) os << ",\"trace\":" << s.trace_id;
      if (s.remote_parent != 0) os << ",\"remote_parent\":" << s.remote_parent;
      if (!s.args.empty()) {
        for (const auto& [key, value] : s.args) {
          os << ",\"" << json_escape(key) << "\":" << json_number(value);
        }
      }
      os << "}}";
    }
  }
  // Cross-process flow arrows: producer span end -> consumer span start.
  // Flow id = the consumer span's id (unique), so every id appears exactly
  // once as "s" and once as "f".
  for (const auto& tel : fleet) {
    for (const auto& s : tel.spans) {
      if (s.remote_parent == 0) continue;
      const auto it = owners.find(s.remote_parent);
      if (it == owners.end()) continue;
      const Owner& producer = it->second;
      emit() << "{\"name\":\"" << json_escape(s.name)
             << "\",\"cat\":\"fedml.flow\",\"ph\":\"s\",\"id\":" << s.id
             << ",\"pid\":" << producer.tel->pid
             << ",\"tid\":" << producer.span->track
             << ",\"ts\":" << json_number(producer.span->end_s * 1e6) << "}";
      emit() << "{\"name\":\"" << json_escape(s.name)
             << "\",\"cat\":\"fedml.flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":"
             << s.id << ",\"pid\":" << tel.pid << ",\"tid\":" << s.track
             << ",\"ts\":" << json_number(s.start_s * 1e6) << "}";
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_fleet_chrome_trace_file(
    const std::string& path, const std::vector<ProcessTelemetry>& fleet) {
  std::ofstream out(path);
  FEDML_CHECK(out.good(), "cannot open '" + path + "' for writing");
  write_fleet_chrome_trace(out, fleet);
  FEDML_CHECK(out.good(), "failed writing fleet trace to '" + path + "'");
}

void write_fleet_csv_file(const std::string& path,
                          const std::vector<ProcessTelemetry>& fleet) {
  util::Table t({"role", "pid", "trace", "round", "start_s", "duration_s",
                 "wire_bytes", "bytes_up", "bytes_down", "nodes_shed",
                 "rpc_p50_ms", "rpc_p95_ms"});
  for (const auto& tel : fleet) {
    const auto* rpc = find_histogram(tel, "net.rpc_ms");
    const double p50 = rpc == nullptr ? 0.0 : rpc->p50;
    const double p95 = rpc == nullptr ? 0.0 : rpc->p95;
    const auto wire = static_cast<std::int64_t>(
        find_counter(tel, "net.wire_bytes"));
    const auto up = static_cast<std::int64_t>(
        find_counter(tel, "net.bytes_up"));
    const auto down = static_cast<std::int64_t>(
        find_counter(tel, "net.bytes_down"));
    const auto shed = static_cast<std::int64_t>(
        find_counter(tel, "net.nodes_shed"));
    for (const auto& s : tel.spans) {
      if (s.name != "fed.round") continue;
      // trace_id as a string: full 64 bits don't fit the table's int64.
      t.add_row({tel.role, static_cast<std::int64_t>(tel.pid),
                 std::to_string(s.trace_id),
                 static_cast<std::int64_t>(find_arg(s, "round", -1.0)),
                 s.start_s, s.end_s - s.start_s, wire, up, down, shed, p50,
                 p95});
    }
  }
  t.write_csv_file(path);
}

}  // namespace fedml::obs
