#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.h"
#include "util/annotations.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/stopwatch.h"

namespace fedml::obs {

/// Monotonic event count. Lock-free recording; safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (a loss, a rate, a queue depth).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) { value_.fetch_add(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Internally locked histogram handle handed out by `MetricsRegistry` —
/// recordable from any thread (worker pools, the serving runtime).
class SharedHistogram {
 public:
  explicit SharedHistogram(Histogram::Config config) : hist_(std::move(config)) {}

  void record(double value) {
    util::LockGuard lock(mutex_);
    hist_.record(value);
  }
  [[nodiscard]] Histogram::Snapshot snapshot() const {
    util::LockGuard lock(mutex_);
    return hist_.snapshot();
  }

 private:
  mutable util::Mutex mutex_{util::lock_rank::kObsCollector,
                             "obs::SharedHistogram::mutex_"};
  Histogram hist_ FEDML_GUARDED_BY(mutex_);
};

/// Deterministically ordered view of a registry (sorted by metric name), so
/// exports are stable across runs and thread interleavings.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Thread-safe named-metric store: counters, gauges, fixed-bucket
/// histograms. Handle lookup takes the registry lock once; recording through
/// a handle is lock-free (counters, gauges) or per-histogram locked, so hot
/// paths cache the reference outside their loop. Names follow the
/// `layer.component.name` convention (see DESIGN.md "Observability");
/// iteration order is the name's lexicographic order, always.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create; references stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `config` is applied on first creation only.
  SharedHistogram& histogram(const std::string& name,
                             Histogram::Config config = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  mutable util::Mutex mutex_{util::lock_rank::kObsRegistry,
                             "obs::MetricsRegistry::mutex_"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      FEDML_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      FEDML_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<SharedHistogram>> histograms_
      FEDML_GUARDED_BY(mutex_);
};

/// RAII timer recording its scope's duration into a histogram on
/// destruction (milliseconds by default). The one-liner for timing a block
/// without threading a stopwatch through it:
///   obs::ScopedTimer timer(registry.histogram("core.fedml.step_ms"));
class ScopedTimer {
 public:
  explicit ScopedTimer(SharedHistogram& hist, double scale = 1e3)
      : hist_(hist), scale_(scale) {}
  ~ScopedTimer() { hist_.record(watch_.seconds() * scale_); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  SharedHistogram& hist_;
  double scale_;
  util::Stopwatch watch_;
};

}  // namespace fedml::obs
