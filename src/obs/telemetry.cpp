#include "obs/telemetry.h"

#include "obs/export.h"

namespace fedml::obs {

void Telemetry::write_chrome_trace_file(const std::string& path) const {
  obs::write_chrome_trace_file(path, tracer.snapshot());
}

void Telemetry::write_jsonl_file(const std::string& path) const {
  obs::write_jsonl_file(path, tracer.snapshot(), metrics.snapshot());
}

void Telemetry::write_metrics_csv_file(const std::string& path) const {
  metrics_table(metrics.snapshot()).write_csv_file(path);
}

}  // namespace fedml::obs
