#include "obs/trace.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "util/error.h"

namespace fedml::obs {

namespace {

/// Per-thread stack of open RAII spans — the implicit-parent chain.
/// thread_local so nesting needs no lock and cannot race. Carries the open
/// span's trace_id so implicitly nested children stay in the same trace.
struct OpenSpan {
  const Tracer* tracer = nullptr;
  SpanId id = 0;
  std::uint64_t trace_id = 0;
};

thread_local std::vector<OpenSpan> t_open_spans;

OpenSpan innermost_open(const Tracer* tracer) {
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->tracer == tracer) return *it;
  }
  return OpenSpan{};
}

void pop_open(const Tracer* tracer, SpanId id) {
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->tracer == tracer && it->id == id) {
      t_open_spans.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : tracer_(other.tracer_), rec_(std::move(other.rec_)) {
  other.tracer_ = nullptr;
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    rec_ = std::move(other.rec_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void TraceSpan::arg(std::string key, double value) {
  if (tracer_ != nullptr) rec_.args.emplace_back(std::move(key), value);
}

void TraceSpan::adopt_remote(const TraceContext& ctx) {
  if (tracer_ == nullptr || !ctx.valid()) return;
  rec_.trace_id = ctx.trace_id;
  rec_.remote_parent = ctx.span_id;
}

void TraceSpan::end() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  pop_open(tracer, rec_.id);
  tracer->finish(std::move(rec_));
}

double TraceSpan::seconds() const {
  return tracer_ == nullptr ? 0.0 : tracer_->now_s() - rec_.start_s;
}

std::shared_ptr<const Clock> Tracer::clock() const {
  util::LockGuard lock(mutex_);
  return clock_;
}

void Tracer::set_clock(std::shared_ptr<const Clock> clock) {
  FEDML_CHECK(clock != nullptr, "tracer clock must not be null");
  util::LockGuard lock(mutex_);
  clock_ = std::move(clock);
}

double Tracer::now_s() const {
  std::shared_ptr<const Clock> c;
  {
    util::LockGuard lock(mutex_);
    c = clock_;
  }
  return c->now_s();
}

void Tracer::seed_ids(std::uint64_t seed) {
  util::LockGuard lock(mutex_);
  id_rng_ = std::make_unique<util::Rng>(seed);
}

TraceSpan Tracer::span(std::string name) {
  return begin(std::move(name), BeginOptions{});
}

TraceSpan Tracer::span(std::string name, SpanId parent) {
  BeginOptions opts;
  opts.parent = parent;
  opts.implicit_parent = false;
  return begin(std::move(name), opts);
}

TraceSpan Tracer::span_root(std::string name) {
  BeginOptions opts;
  opts.fresh_trace = true;
  return begin(std::move(name), opts);
}

TraceSpan Tracer::span_remote(std::string name, const TraceContext& ctx) {
  if (!ctx.valid()) return span(std::move(name));
  BeginOptions opts;
  opts.implicit_parent = false;
  opts.trace_id = ctx.trace_id;
  opts.remote_parent = ctx.span_id;
  return begin(std::move(name), opts);
}

TraceSpan Tracer::span_at(std::string name, double start_s) {
  BeginOptions opts;
  opts.start_s = start_s;
  opts.has_start = true;
  return begin(std::move(name), opts);
}

TraceSpan Tracer::span_since(std::string name, const util::Stopwatch& watch) {
  const double elapsed = watch.seconds();
  BeginOptions opts;
  opts.start_s = now_s() - elapsed;
  opts.has_start = true;
  return begin(std::move(name), opts);
}

TraceSpan Tracer::begin(std::string name, BeginOptions opts) {
  SpanRecord rec;
  rec.name = std::move(name);
  rec.trace_id = opts.trace_id;
  rec.remote_parent = opts.remote_parent;
  if (opts.implicit_parent) {
    const OpenSpan enclosing = innermost_open(this);
    rec.parent = enclosing.id;
    if (rec.trace_id == 0 && !opts.fresh_trace) rec.trace_id = enclosing.trace_id;
  } else {
    rec.parent = opts.parent;
  }
  {
    util::LockGuard lock(mutex_);
    rec.id = alloc_id();
    if (opts.fresh_trace) rec.trace_id = alloc_id();
    rec.start_s = opts.has_start ? opts.start_s : clock_->now_s();
    rec.track = track_for_current_thread();
  }
  t_open_spans.push_back(OpenSpan{this, rec.id, rec.trace_id});
  return TraceSpan(this, std::move(rec));
}

std::uint64_t Tracer::alloc_id() {
  if (id_rng_ == nullptr) return next_id_++;
  std::uint64_t id = 0;
  while (id == 0) id = id_rng_->engine()();
  return id;
}

void Tracer::finish(SpanRecord rec) {
  util::LockGuard lock(mutex_);
  rec.end_s = clock_->now_s();
  auto& recorder = FlightRecorder::instance();
  if (recorder.enabled()) {
    recorder.note(FlightRecorder::EventKind::kSpan, rec.name.c_str(), rec.id,
                  static_cast<std::uint64_t>((rec.end_s - rec.start_s) * 1e6));
  }
  spans_.push_back(std::move(rec));
}

SpanId Tracer::record(SpanRecord rec) {
  util::LockGuard lock(mutex_);
  if (rec.id == 0) rec.id = alloc_id();
  const SpanId id = rec.id;
  spans_.push_back(std::move(rec));
  return id;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  util::LockGuard lock(mutex_);
  return spans_;
}

std::size_t Tracer::size() const {
  util::LockGuard lock(mutex_);
  return spans_.size();
}

void Tracer::clear() {
  util::LockGuard lock(mutex_);
  spans_.clear();
}

std::uint32_t Tracer::track_for_current_thread() {
  const auto id = std::this_thread::get_id();
  const auto it = tracks_.find(id);
  if (it != tracks_.end()) return it->second;
  const auto track = static_cast<std::uint32_t>(tracks_.size());
  tracks_.emplace(id, track);
  return track;
}

}  // namespace fedml::obs
