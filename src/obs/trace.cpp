#include "obs/trace.h"

#include <algorithm>

#include "util/error.h"

namespace fedml::obs {

namespace {

/// Per-thread stack of open RAII spans (tracer, id) — the implicit-parent
/// chain. thread_local so nesting needs no lock and cannot race.
thread_local std::vector<std::pair<const Tracer*, SpanId>> t_open_spans;

SpanId innermost_open(const Tracer* tracer) {
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->first == tracer) return it->second;
  }
  return 0;
}

void pop_open(const Tracer* tracer, SpanId id) {
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->first == tracer && it->second == id) {
      t_open_spans.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

TraceSpan::TraceSpan(TraceSpan&& other) noexcept
    : tracer_(other.tracer_), rec_(std::move(other.rec_)) {
  other.tracer_ = nullptr;
}

TraceSpan& TraceSpan::operator=(TraceSpan&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    rec_ = std::move(other.rec_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void TraceSpan::arg(std::string key, double value) {
  if (tracer_ != nullptr) rec_.args.emplace_back(std::move(key), value);
}

void TraceSpan::end() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  pop_open(tracer, rec_.id);
  tracer->finish(std::move(rec_));
}

double TraceSpan::seconds() const {
  return tracer_ == nullptr ? 0.0 : tracer_->now_s() - rec_.start_s;
}

std::shared_ptr<const Clock> Tracer::clock() const {
  util::LockGuard lock(mutex_);
  return clock_;
}

void Tracer::set_clock(std::shared_ptr<const Clock> clock) {
  FEDML_CHECK(clock != nullptr, "tracer clock must not be null");
  util::LockGuard lock(mutex_);
  clock_ = std::move(clock);
}

double Tracer::now_s() const {
  std::shared_ptr<const Clock> c;
  {
    util::LockGuard lock(mutex_);
    c = clock_;
  }
  return c->now_s();
}

TraceSpan Tracer::span(std::string name) {
  return begin(std::move(name), 0, /*implicit_parent=*/true, 0.0,
               /*has_start=*/false);
}

TraceSpan Tracer::span(std::string name, SpanId parent) {
  return begin(std::move(name), parent, /*implicit_parent=*/false, 0.0,
               /*has_start=*/false);
}

TraceSpan Tracer::span_at(std::string name, double start_s) {
  return begin(std::move(name), 0, /*implicit_parent=*/true, start_s,
               /*has_start=*/true);
}

TraceSpan Tracer::span_since(std::string name, const util::Stopwatch& watch) {
  const double elapsed = watch.seconds();
  return begin(std::move(name), 0, /*implicit_parent=*/true,
               now_s() - elapsed, /*has_start=*/true);
}

TraceSpan Tracer::begin(std::string name, SpanId parent, bool implicit_parent,
                        double start_s, bool has_start) {
  SpanRecord rec;
  rec.name = std::move(name);
  rec.parent = implicit_parent ? innermost_open(this) : parent;
  {
    util::LockGuard lock(mutex_);
    rec.id = next_id_++;
    rec.start_s = has_start ? start_s : clock_->now_s();
    rec.track = track_for_current_thread();
  }
  t_open_spans.emplace_back(this, rec.id);
  return TraceSpan(this, std::move(rec));
}

void Tracer::finish(SpanRecord rec) {
  util::LockGuard lock(mutex_);
  rec.end_s = clock_->now_s();
  spans_.push_back(std::move(rec));
}

SpanId Tracer::record(SpanRecord rec) {
  util::LockGuard lock(mutex_);
  if (rec.id == 0) rec.id = next_id_++;
  const SpanId id = rec.id;
  spans_.push_back(std::move(rec));
  return id;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  util::LockGuard lock(mutex_);
  return spans_;
}

std::size_t Tracer::size() const {
  util::LockGuard lock(mutex_);
  return spans_.size();
}

void Tracer::clear() {
  util::LockGuard lock(mutex_);
  spans_.clear();
}

std::uint32_t Tracer::track_for_current_thread() {
  const auto id = std::this_thread::get_id();
  const auto it = tracks_.find(id);
  if (it != tracks_.end()) return it->second;
  const auto track = static_cast<std::uint32_t>(tracks_.size());
  tracks_.emplace(id, track);
  return track;
}

}  // namespace fedml::obs
