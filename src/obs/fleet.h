#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/annotations.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"

namespace fedml::obs {

/// One process's telemetry as shipped over the uplink: identity plus the
/// full span list and metrics snapshot. Lives in obs/ (below net/ in the
/// layer DAG) so the wire layer can serialize it without obs depending on
/// frames.
struct ProcessTelemetry {
  std::uint64_t pid = 0;
  /// Human-readable origin ("root", "leaf0", "node3", ...); becomes the
  /// process_name track label in the merged trace.
  std::string role;
  std::vector<SpanRecord> spans;
  MetricsSnapshot metrics;
};

/// Thread-safe per-origin telemetry sink. The root aggregator (and each
/// leaf, for its own fleet) absorbs `kTelemetry` frames into one of these
/// on the reactor thread; `snapshot()` hands the merged fleet view to the
/// exporters after the run. Absorbing the same pid twice replaces the
/// older snapshot — uplinks are cumulative, not incremental.
class FleetCollector {
 public:
  void absorb(ProcessTelemetry telemetry);

  /// All origins, ordered by pid (deterministic export order).
  [[nodiscard]] std::vector<ProcessTelemetry> snapshot() const;

  [[nodiscard]] std::size_t origin_count() const;

 private:
  mutable util::Mutex mutex_{util::lock_rank::kObsFleet,
                             "obs::FleetCollector::mutex_"};
  std::map<std::uint64_t, ProcessTelemetry> by_pid_ FEDML_GUARDED_BY(mutex_);
};

/// Merge every origin's snapshot of the named histogram into one fleet
/// histogram (bounds must agree across origins — `Histogram::merge`
/// throws otherwise). Returns a zero histogram when no origin has it.
Histogram::Snapshot merged_fleet_histogram(
    const std::vector<ProcessTelemetry>& fleet, const std::string& name);

/// Sum of the named counter across origins (0 when absent everywhere).
std::uint64_t summed_fleet_counter(const std::vector<ProcessTelemetry>& fleet,
                                   const std::string& name);

/// Merged Chrome-trace JSON for the whole fleet: per-process pid/tid tracks
/// (with process_name metadata from `role`), every span as an X event, and
/// a cross-process flow arrow ("s" at the producer span's end, "f" at the
/// consumer span's start, cat "fedml.flow") for every span whose
/// remote_parent resolves to a span in another origin. Flow ids are the
/// consumer span's id, so each id appears exactly once as "s" and once as
/// "f". Timestamps are per-process wall clocks (epoch = that process's
/// tracer construction), so tracks are NOT time-aligned across pids — the
/// flow arrows, not the x axis, carry the cross-process ordering.
void write_fleet_chrome_trace(std::ostream& os,
                              const std::vector<ProcessTelemetry>& fleet);
void write_fleet_chrome_trace_file(const std::string& path,
                                   const std::vector<ProcessTelemetry>& fleet);

/// Per-round fleet CSV: one row per `fed.round` span per origin (round
/// number and duration from the span), joined with that origin's run-total
/// wire accounting and straggler percentiles (net.rpc_ms p50/p95) and shed
/// count. Written via util::Table so it matches the repo's CSV dialect.
void write_fleet_csv_file(const std::string& path,
                          const std::vector<ProcessTelemetry>& fleet);

}  // namespace fedml::obs
