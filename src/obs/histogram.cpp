#include "obs/histogram.h"

#include <algorithm>

#include "util/error.h"

namespace fedml::obs {

double exact_percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return samples[rank];
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  FEDML_CHECK(!sorted.empty(), "quantile of an empty sample set");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::vector<double> Histogram::exponential_bounds(double first, double factor,
                                                  std::size_t count) {
  FEDML_CHECK(first > 0.0, "exponential bounds need a positive first bound");
  FEDML_CHECK(factor > 1.0, "exponential bounds need factor > 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = first;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Histogram::Histogram(Config config)
    : bounds_(std::move(config.bounds)),
      retain_samples_(config.retain_samples),
      max_retained_(config.max_retained) {
  FEDML_CHECK(!retain_samples_ || max_retained_ > 0,
              "retain_samples needs a positive max_retained cap");
  if (bounds_.empty()) {
    // Default coverage: 1 µs .. ~5.5e8 in whatever unit the caller records
    // (spans three timing regimes: µs-scale ops, ms latencies, long runs).
    bounds_ = exponential_bounds(1e-3, 2.0, 40);
  }
  FEDML_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "histogram bounds must be strictly ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double value) {
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += 1;
  sum_ += value;
  if (retain_samples_) {
    // Algorithm R: exact up to the cap, then a uniform reservoir over all
    // `seen_` offered samples. The fixed-seed Rng keeps the kept set a pure
    // function of the record sequence.
    seen_ += 1;
    if (samples_.size() < max_retained_) {
      samples_.push_back(value);
    } else {
      const auto j = static_cast<std::uint64_t>(reservoir_rng_.uniform_int(
          0, static_cast<std::int64_t>(seen_) - 1));
      if (j < max_retained_) samples_[static_cast<std::size_t>(j)] = value;
    }
  }
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  if (retain_samples_) return exact_percentile(samples_, q);
  q = std::clamp(q, 0.0, 1.0);
  const auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1) + 0.5);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    if (cum + counts_[b] > rank) {
      // Interpolate inside the bucket, clamped to the observed range so a
      // single-sample histogram reports the sample itself.
      const double lo = b == 0 ? min_ : std::max(min_, bounds_[b - 1]);
      const double hi =
          b == bounds_.size() ? max_ : std::min(max_, bounds_[b]);
      const double frac =
          counts_[b] <= 1
              ? 0.0
              : static_cast<double>(rank - cum) /
                    static_cast<double>(counts_[b] - 1);
      return lo + (hi - lo) * frac;
    }
    cum += counts_[b];
  }
  return max_;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max();
  s.mean = mean();
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  s.bounds = bounds_;
  s.counts = counts_;
  s.samples = samples_;
  return s;
}

void Histogram::merge(const Snapshot& other) {
  FEDML_CHECK(other.bounds == bounds_,
              "histogram merge requires identical bucket bounds");
  FEDML_CHECK(other.counts.size() == counts_.size(),
              "histogram merge requires identical bucket count");
  if (other.count == 0) return;
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts[b];
  if (count_ == 0) {
    min_ = other.min;
    max_ = other.max;
  } else {
    min_ = std::min(min_, other.min);
    max_ = std::max(max_, other.max);
  }
  count_ += other.count;
  sum_ += other.sum;
  if (retain_samples_) {
    // Append, don't reservoir: each origin capped its own set, so the
    // merged set is bounded by origins × cap and exact percentiles over
    // everything that arrived are worth the memory.
    samples_.insert(samples_.end(), other.samples.begin(), other.samples.end());
    seen_ += other.count;
  }
}

}  // namespace fedml::obs
