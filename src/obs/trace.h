#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/clock.h"
#include "util/annotations.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace fedml::obs {

class Tracer;

using SpanId = std::uint64_t;  ///< 1-based; 0 means "no span / no parent"

/// Dapper-style propagation pair: a 64-bit trace id shared by every span of
/// one logical operation (fleet-wide), plus the span under which remote work
/// should parent itself. Both 0 = "no context" — the single-process default.
struct TraceContext {
  std::uint64_t trace_id = 0;
  SpanId span_id = 0;
  [[nodiscard]] bool valid() const { return trace_id != 0; }
};

/// One finished span: a named [start, end] interval on a track, optionally
/// parented to an enclosing span and annotated with numeric args.
struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;
  std::string name;
  double start_s = 0.0;
  double end_s = 0.0;
  /// Export lane (Chrome-trace tid). RAII spans get a per-thread track in
  /// first-use order; explicit `Tracer::record` calls choose their own
  /// (the simulator uses node index + 1, round markers track 0).
  std::uint32_t track = 0;
  /// Fleet trace membership (0 in single-process traces). Implicitly nested
  /// spans inherit the innermost open span's trace_id.
  std::uint64_t trace_id = 0;
  /// Span id of a parent living in ANOTHER process (0 = none). Local
  /// `parent` and `remote_parent` are disjoint: a span adopted from the
  /// wire has remote_parent set and parent 0.
  SpanId remote_parent = 0;
  std::vector<std::pair<std::string, double>> args;
};

/// RAII scoped span. Obtained from `Tracer::span*`; records the interval
/// into the tracer when it ends (destruction or an explicit `end()`).
/// A default-constructed span is inactive and records nothing — the idiom
/// for telemetry-optional code paths:
///   obs::TraceSpan round;
///   if (telemetry) round = telemetry->tracer.span("fed.round");
/// Spans on one thread nest: the innermost open span is the implicit parent
/// of the next one (end them LIFO, which RAII gives you for free).
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceSpan&& other) noexcept;
  TraceSpan& operator=(TraceSpan&& other) noexcept;
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { end(); }

  /// Attach a numeric annotation (exported into the trace's args).
  void arg(std::string key, double value);

  /// Finish the span now; idempotent, after which the span is inactive.
  void end();

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }
  [[nodiscard]] SpanId id() const { return rec_.id; }

  /// Propagation context for stamping outbound frames: {trace_id, this
  /// span's id}. Meaningful while the span is active.
  [[nodiscard]] TraceContext context() const {
    return TraceContext{rec_.trace_id, rec_.id};
  }

  /// Join an already-open span to a remote trace: adopt the sender's trace
  /// id and record its span as this span's cross-process parent. The leaf
  /// platform's round span calls this when the root's model (carrying the
  /// root round's context) arrives mid-round. No-op when inactive or when
  /// `ctx` is empty.
  void adopt_remote(const TraceContext& ctx);

  /// Seconds elapsed since the span started (0 when inactive) — lets call
  /// sites feed the same interval into a histogram without a second timer.
  [[nodiscard]] double seconds() const;

 private:
  friend class Tracer;
  TraceSpan(Tracer* tracer, SpanRecord rec)
      : tracer_(tracer), rec_(std::move(rec)) {}

  Tracer* tracer_ = nullptr;
  SpanRecord rec_;
};

/// Thread-safe collector of finished spans on a pluggable `Clock`.
///
/// Wall-clock by default (epoch = tracer construction); the simulator swaps
/// in its virtual-time clock for the duration of a run via `ClockScope`, so
/// sim traces are deterministic. Span ids are assigned in record order under
/// the tracer lock; on a single-threaded clock (the simulator) the whole
/// span list is therefore a pure function of the schedule.
class Tracer {
 public:
  Tracer() : clock_(std::make_shared<WallClock>()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  [[nodiscard]] std::shared_ptr<const Clock> clock() const;
  void set_clock(std::shared_ptr<const Clock> clock);
  [[nodiscard]] double now_s() const;

  /// Switch id assignment from the sequential counter to 64-bit draws from
  /// a seeded util::Rng. Distributed processes call this once at startup
  /// (seed mixed with the process role/index) so span ids are unique across
  /// the fleet yet deterministic per seed; single-process and sim-mode
  /// tracers keep the sequential default, which pins their exports
  /// byte-identical per seed.
  void seed_ids(std::uint64_t seed);

  /// Start a span now; parent = the calling thread's innermost open span.
  TraceSpan span(std::string name);
  /// Start a span now under an explicit parent (cross-thread nesting: pool
  /// workers parent their spans to the driver's round span by id).
  TraceSpan span(std::string name, SpanId parent);
  /// Start a span that OPENS a new trace: a fresh nonzero trace_id is
  /// assigned (implicit local parenting still applies). The root
  /// aggregator's per-round span is the canonical caller.
  TraceSpan span_root(std::string name);
  /// Start a span that JOINS a remote trace: trace_id and cross-process
  /// parent come from `ctx` (a frame envelope); no local parent. Falls back
  /// to plain `span()` when `ctx` is empty.
  TraceSpan span_remote(std::string name, const TraceContext& ctx);
  /// Start a span with a backdated start time (same-thread implicit parent).
  TraceSpan span_at(std::string name, double start_s);
  /// Span covering `watch`'s elapsed time so far: the one-line migration for
  /// stopwatch call sites — `auto s = tracer.span_since("phase", watch);`.
  TraceSpan span_since(std::string name, const util::Stopwatch& watch);

  /// Record a fully specified interval (the discrete-event simulator's path:
  /// times come from the event clock, tracks from node ids). `rec.id` is
  /// assigned; the id is returned so callers can parent later records.
  SpanId record(SpanRecord rec);

  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// RAII clock override; restores the previous clock on destruction. Do
  /// not hold RAII spans across a clock swap — their start times would mix
  /// epochs.
  class ClockScope {
   public:
    ClockScope(Tracer& tracer, std::shared_ptr<const Clock> clock)
        : tracer_(tracer), previous_(tracer.clock()) {
      tracer_.set_clock(std::move(clock));
    }
    ~ClockScope() { tracer_.set_clock(std::move(previous_)); }
    ClockScope(const ClockScope&) = delete;
    ClockScope& operator=(const ClockScope&) = delete;

   private:
    Tracer& tracer_;
    std::shared_ptr<const Clock> previous_;
  };

 private:
  friend class TraceSpan;

  struct BeginOptions {
    SpanId parent = 0;
    bool implicit_parent = true;
    double start_s = 0.0;
    bool has_start = false;
    std::uint64_t trace_id = 0;
    SpanId remote_parent = 0;
    bool fresh_trace = false;
  };
  TraceSpan begin(std::string name, BeginOptions opts);
  /// Called by TraceSpan::end — stamps end_s under the lock so the span
  /// list's end times are monotone in append order per clock.
  void finish(SpanRecord rec);
  std::uint32_t track_for_current_thread() FEDML_REQUIRES(mutex_);
  /// Next span/trace id: sequential by default, a nonzero 64-bit draw once
  /// `seed_ids` has been called.
  std::uint64_t alloc_id() FEDML_REQUIRES(mutex_);

  mutable util::Mutex mutex_{util::lock_rank::kObsCollector,
                             "obs::Tracer::mutex_"};
  std::shared_ptr<const Clock> clock_ FEDML_GUARDED_BY(mutex_);
  std::vector<SpanRecord> spans_ FEDML_GUARDED_BY(mutex_);
  SpanId next_id_ FEDML_GUARDED_BY(mutex_) = 1;
  std::unique_ptr<util::Rng> id_rng_ FEDML_GUARDED_BY(mutex_);
  std::map<std::thread::id, std::uint32_t> tracks_ FEDML_GUARDED_BY(mutex_);
};

}  // namespace fedml::obs
