#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace fedml::obs {

/// Process-wide crash/fault flight recorder: a fixed-size lock-free ring of
/// the most recent span / counter / frame events, dumped as JSONL when
/// something goes wrong (crash signal, SIGTERM, protocol violation, peer
/// shed) so post-mortems have the last ~1k events leading up to the fault.
///
/// Disabled by default; `enable(path)` arms it (distributed example
/// processes arm it at startup). When disabled, `note()` is one relaxed
/// load and a branch — cheap enough to leave compiled into the tracer and
/// transport hot paths.
///
/// Concurrency: writers claim a slot with one fetch_add on a global ticket
/// counter and publish through a per-slot seqlock; every slot field is a
/// relaxed/release atomic, so concurrent writers and a dumping reader are
/// data-race-free (TSan-clean). A reader that observes a torn slot (writer
/// mid-flight or lapped) counts it as dropped instead of emitting garbage.
///
/// `dump()` is async-signal-safe once enabled: it uses only open(2),
/// write(2), close(2) and manual integer formatting — no allocation, no
/// locks, no stdio — so the crash-signal handlers installed by
/// `install_signal_dump()` may call it directly.
class FlightRecorder {
 public:
  /// Event taxonomy; exported as the integer `kind` field.
  enum class EventKind : std::uint64_t {
    kSpan = 1,     ///< a = span id, b = duration in microseconds
    kFrame = 2,    ///< a = frame type, b = wire bytes
    kCounter = 3,  ///< a = counter value after the bump, b = 0
    kMark = 4,     ///< freeform milestone; a, b caller-defined
  };

  static FlightRecorder& instance();

  /// Arm the recorder and set the JSONL dump path. Not signal-safe; call
  /// once at process startup before installing signal handlers.
  void enable(const std::string& dump_path);

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Append one event (lock-free, wait-free per writer). `name` is
  /// truncated to 23 bytes. No-op while disabled.
  void note(EventKind kind, const char* name, std::uint64_t a,
            std::uint64_t b);

  /// Append the ring's surviving events to the dump path as JSONL: one
  /// `{"type":"flight_header","pid":…,"reason":"…","dropped":…}` line, then
  /// `{"type":"flight","seq":…,"kind":…,"name":"…","a":…,"b":…}` lines in
  /// ticket order. Async-signal-safe; silently returns when disabled.
  /// `reason` must be a NUL-terminated literal (not inspected beyond that).
  void dump(const char* reason) noexcept;

  /// Install dump-then-default handlers for the fatal signals (SIGSEGV,
  /// SIGABRT, SIGBUS, SIGFPE, SIGILL) and a dump-then-exit handler for
  /// SIGTERM. Call after `enable()`.
  static void install_signal_dump();

  /// Events accepted since enable (monotone ticket counter).
  [[nodiscard]] std::uint64_t accepted() const {
    return head_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kSlots = 1024;  ///< power of two
  static constexpr std::size_t kNameWords = 3; ///< 24 bytes, NUL-padded

 private:
  FlightRecorder() = default;

  struct Slot {
    /// Seqlock: 2*ticket+1 while the writer is mid-flight, 2*ticket+2 once
    /// published; a reader re-checks after copying the payload.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> kind{0};
    std::atomic<std::uint64_t> name[kNameWords] = {};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> head_{0};
  Slot slots_[kSlots];
  /// Dump path, fixed at enable() time so dump() never allocates.
  char path_[256] = {};
};

}  // namespace fedml::obs
