#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fedml::obs {

/// The bundle instrumented layers share: one metrics registry + one tracer.
///
/// Instrumentation is opt-in and null-safe by convention — every
/// instrumented config (`fed::Platform::Config`, `core::FedMLConfig`,
/// `sim::AsyncConfig`, `serve::AdaptationServer::Config`) carries an
/// `obs::Telemetry*` defaulting to nullptr, and a null pointer costs one
/// branch per instrumentation site (measured < 2% end-to-end on
/// bench/fig2b_local_steps). The Telemetry object must outlive every
/// component it is attached to.
struct Telemetry {
  MetricsRegistry metrics;
  Tracer tracer;

  /// Exporter conveniences; throw util::Error on I/O failure.
  void write_chrome_trace_file(const std::string& path) const;
  void write_jsonl_file(const std::string& path) const;
  void write_metrics_csv_file(const std::string& path) const;
};

}  // namespace fedml::obs
