#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

namespace fedml::obs {

namespace {

/// write(2) a NUL-terminated buffer, retrying on EINTR / short writes.
/// Async-signal-safe.
void write_all(int fd, const char* buf, std::size_t len) noexcept {
  std::size_t done = 0;
  while (done < len) {
    const ::ssize_t n = ::write(fd, buf + done, len - done);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // best-effort: a failing dump must not crash the crasher
    }
    done += static_cast<std::size_t>(n);
  }
}

/// Append `v` in decimal to `out` (capacity-checked by the caller's sizing).
char* format_u64(char* out, std::uint64_t v) noexcept {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) *out++ = tmp[--n];
  return out;
}

char* append_str(char* out, const char* s) noexcept {
  while (*s != '\0') *out++ = *s++;
  return out;
}

/// Append `s`, keeping only JSON-inert printable ASCII (everything else
/// becomes '_') so no escaping pass is needed in the signal path.
char* append_sanitized(char* out, const char* s) noexcept {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    const bool inert = c >= 0x20 && c < 0x7f && c != '"' && c != '\\';
    *out++ = inert ? c : '_';
  }
  return out;
}

void signal_dump_handler(int signo) {
  // Reason strings must be literals: pick per-signal without formatting.
  const char* reason = "signal";
  switch (signo) {
    case SIGSEGV: reason = "SIGSEGV"; break;
    case SIGABRT: reason = "SIGABRT"; break;
    case SIGBUS: reason = "SIGBUS"; break;
    case SIGFPE: reason = "SIGFPE"; break;
    case SIGILL: reason = "SIGILL"; break;
    case SIGTERM: reason = "SIGTERM"; break;
    default: break;
  }
  FlightRecorder::instance().dump(reason);
  if (signo == SIGTERM) ::_exit(128 + SIGTERM);
  // Fatal signals: restore the default disposition and re-raise so the
  // process still dies with the original signal (core dumps intact).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::enable(const std::string& dump_path) {
  const std::size_t n = dump_path.size() < sizeof(path_) - 1
                            ? dump_path.size()
                            : sizeof(path_) - 1;
  std::memcpy(path_, dump_path.data(), n);
  path_[n] = '\0';
  enabled_.store(true, std::memory_order_release);
}

void FlightRecorder::note(EventKind kind, const char* name, std::uint64_t a,
                          std::uint64_t b) {
  if (!enabled()) return;
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & (kSlots - 1)];
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.kind.store(static_cast<std::uint64_t>(kind), std::memory_order_relaxed);
  // First 23 bytes of the name, NUL-padded, packed little-endian into the
  // three atomic words.
  const std::size_t len = ::strnlen(name, kNameWords * 8 - 1);
  for (std::size_t w = 0; w < kNameWords; ++w) {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      const std::size_t at = w * 8 + i;
      const char c = at < len ? name[at] : '\0';
      word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
              << (8 * i);
    }
    slot.name[w].store(word, std::memory_order_relaxed);
  }
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

void FlightRecorder::dump(const char* reason) noexcept {
  if (!enabled()) return;
  const int fd = ::open(path_, O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t lo = head > kSlots ? head - kSlots : 0;

  // Worst-case line: fixed text + 23-byte name + four 20-digit integers.
  char line[256];
  std::uint64_t dropped = lo;  // overwritten-before-dump events
  std::uint64_t emitted = 0;

  // First pass: count torn slots so the header's `dropped` is complete.
  for (std::uint64_t t = lo; t < head; ++t) {
    const Slot& slot = slots_[t & (kSlots - 1)];
    if (slot.seq.load(std::memory_order_acquire) != 2 * t + 2) ++dropped;
  }

  char* p = line;
  p = append_str(p, "{\"type\":\"flight_header\",\"pid\":");
  p = format_u64(p, static_cast<std::uint64_t>(::getpid()));
  p = append_str(p, ",\"reason\":\"");
  p = append_sanitized(p, reason);
  p = append_str(p, "\",\"dropped\":");
  p = format_u64(p, dropped);
  p = append_str(p, "}\n");
  write_all(fd, line, static_cast<std::size_t>(p - line));

  for (std::uint64_t t = lo; t < head; ++t) {
    Slot& slot = slots_[t & (kSlots - 1)];
    if (slot.seq.load(std::memory_order_acquire) != 2 * t + 2) continue;
    const std::uint64_t kind = slot.kind.load(std::memory_order_relaxed);
    char name[kNameWords * 8 + 1];
    for (std::size_t w = 0; w < kNameWords; ++w) {
      const std::uint64_t word = slot.name[w].load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < 8; ++i) {  // lint: allow(kern-dispatch) — crash-dump byte unpacking, no tensor math
        name[w * 8 + i] = static_cast<char>((word >> (8 * i)) & 0xff);
      }
    }
    name[kNameWords * 8] = '\0';
    const std::uint64_t a = slot.a.load(std::memory_order_relaxed);
    const std::uint64_t b = slot.b.load(std::memory_order_relaxed);
    if (slot.seq.load(std::memory_order_acquire) != 2 * t + 2) continue;

    p = line;
    p = append_str(p, "{\"type\":\"flight\",\"seq\":");
    p = format_u64(p, t);
    p = append_str(p, ",\"kind\":");
    p = format_u64(p, kind);
    p = append_str(p, ",\"name\":\"");
    p = append_sanitized(p, name);
    p = append_str(p, "\",\"a\":");
    p = format_u64(p, a);
    p = append_str(p, ",\"b\":");
    p = format_u64(p, b);
    p = append_str(p, "}\n");
    write_all(fd, line, static_cast<std::size_t>(p - line));
    ++emitted;
  }
  static_cast<void>(emitted);
  ::close(fd);  // lint: allow(raw-socket) async-signal-safe dump owns its fd
}

void FlightRecorder::install_signal_dump() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &signal_dump_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGBUS, &sa, nullptr);
  ::sigaction(SIGFPE, &sa, nullptr);
  ::sigaction(SIGILL, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace fedml::obs
