#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fedml::obs {

/// q-th quantile (q in [0,1], nearest-rank) of `samples`; 0 when empty.
/// Takes the vector by value — callers pass a snapshot copy. This is THE
/// percentile implementation for the repo (it replaced per-layer copies in
/// serve/ and bench/); keep exactly one.
double exact_percentile(std::vector<double> samples, double q);

/// Linear-interpolation quantile of an ascending-sorted, non-empty sample
/// vector (the convention core::FleetMetrics reports: p10/median interpolate
/// between order statistics instead of snapping to the nearest rank).
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Fixed-bucket histogram with p50/p95/p99 summaries.
///
/// Thread-COMPATIBLE: synchronize externally (a `FEDML_GUARDED_BY` member,
/// or the internally locked `obs::SharedHistogram` handed out by
/// `MetricsRegistry`). Buckets are upper bounds in ascending order plus an
/// implicit overflow bucket, so memory is O(buckets) regardless of sample
/// count. With `retain_samples` the raw samples are kept as well and
/// `percentile` is exact nearest-rank (what the serving stats report);
/// without it, percentiles interpolate inside the owning bucket, clamped to
/// the observed [min, max].
class Histogram {
 public:
  struct Config {
    /// Ascending bucket upper bounds; values above the last land in the
    /// overflow bucket. Empty = default exponential coverage.
    std::vector<double> bounds;
    /// Keep raw samples for exact percentiles (O(n) memory — bounded use
    /// only, e.g. per-run serving latencies).
    bool retain_samples = false;
    /// Hard cap on retained samples. Up to the cap every sample is kept and
    /// percentiles are exact; past it the retained set degrades to a
    /// uniform reservoir (Algorithm R on a fixed-seed util::Rng, so the
    /// kept set is a pure function of the record sequence) and percentiles
    /// become unbiased estimates. Keeps week-long fleet runs O(cap).
    std::size_t max_retained = 4096;
  };

  /// `count` bounds at first, first*factor, first*factor^2, ...
  static std::vector<double> exponential_bounds(double first, double factor,
                                                std::size_t count);

  /// Aggregate view; `counts` has one entry per bound plus the overflow
  /// bucket last.
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    /// Retained samples (empty unless the source retains them). Rides the
    /// telemetry uplink so the fleet registry can report exact percentiles
    /// over per-origin-capped sample sets.
    std::vector<double> samples;
  };

  Histogram() : Histogram(Config{}) {}
  explicit Histogram(Config config);

  void record(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

  /// q in [0,1]; 0 when empty. Exact nearest-rank when samples are
  /// retained, bucket-interpolated estimate otherwise.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] Snapshot snapshot() const;

  /// Fold another histogram's snapshot into this one (the root's fleet
  /// registry merging per-origin telemetry). Bucket layouts must match
  /// exactly — merging histograms with different bounds throws, because
  /// adding counts bucket-by-bucket would silently misbin. Retained samples
  /// are appended verbatim: each origin already capped its own set, so a
  /// fleet merge holds at most origins × cap samples.
  void merge(const Snapshot& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 (overflow last)
  bool retain_samples_ = false;
  std::size_t max_retained_ = 0;
  std::vector<double> samples_;
  std::uint64_t seen_ = 0;  ///< reservoir denominator: samples offered so far
  util::Rng reservoir_rng_{0x0b5'beef};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace fedml::obs
