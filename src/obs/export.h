#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/table.h"

namespace fedml::obs {

/// Chrome `trace_event` JSON ("X" complete events, timestamps in µs),
/// loadable in Perfetto (ui.perfetto.dev) or about://tracing. Tracks map to
/// tids; each span's id/parent ride along in its args. Output is a pure
/// function of the span list — a deterministic (sim-clock) trace is
/// byte-identical across runs.
void write_chrome_trace(std::ostream& os, const std::vector<SpanRecord>& spans);
void write_chrome_trace_file(const std::string& path,
                             const std::vector<SpanRecord>& spans);

/// One JSON object per line: every span (`{"type":"span",...}`, in record
/// order — end timestamps are monotone per clock), then every metric
/// (`counter` / `gauge` / `histogram`, sorted by name). The format
/// `scripts/check_telemetry.py` validates.
void write_jsonl(std::ostream& os, const std::vector<SpanRecord>& spans,
                 const MetricsSnapshot& metrics);
void write_jsonl_file(const std::string& path,
                      const std::vector<SpanRecord>& spans,
                      const MetricsSnapshot& metrics);

/// Metrics snapshot as a `util::Table` (one row per metric, histograms with
/// count/mean/p50/p95/p99) — print it or `write_csv_file` it.
[[nodiscard]] util::Table metrics_table(const MetricsSnapshot& metrics);

namespace detail {
/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& s);
/// Deterministic, locale-independent number rendering (%.12g-style; JSON
/// `null` for non-finite values).
[[nodiscard]] std::string json_number(double v);
}  // namespace detail

}  // namespace fedml::obs
