#include "sim/event_queue.h"

#include <cmath>

#include "util/error.h"

namespace fedml::sim {

EventQueue::EventId EventQueue::schedule_at(double at, std::function<void()> fn) {
  thread_.check("EventQueue::schedule_at");
  FEDML_CHECK(std::isfinite(at), "event time must be finite");
  FEDML_CHECK(at >= now_, "cannot schedule an event in the simulated past");
  FEDML_CHECK(static_cast<bool>(fn), "event needs a callback");
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  pending_ids_.insert(id);
  ++live_;
  return id;
}

EventQueue::EventId EventQueue::schedule_in(double delay, std::function<void()> fn) {
  FEDML_CHECK(delay >= 0.0, "event delay must be non-negative");
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::cancel(EventId id) {
  thread_.check("EventQueue::cancel");
  // Only ids still pending can be cancelled; fired/cancelled ids are no-ops.
  if (pending_ids_.erase(id) == 0) return false;
  // Lazy deletion: the entry stays in the heap and is skipped when popped.
  cancelled_.insert(id);
  --live_;
  return true;
}

bool EventQueue::step() {
  thread_.check("EventQueue::step");
  while (!heap_.empty()) {
    // Move the callback out before popping; top() is const.
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (cancelled_.erase(e.id) > 0) continue;  // skip cancelled entries
    now_ = e.time;
    pending_ids_.erase(e.id);
    --live_;
    ++fired_;
    e.fn();
    return true;
  }
  return false;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

}  // namespace fedml::sim
