#include "sim/network.h"

#include <cmath>

#include "util/error.h"

namespace fedml::sim {

NetworkTransport::NetworkTransport(const fed::CommModel& nominal,
                                   const NetworkConfig& config,
                                   std::size_t num_nodes, util::Rng rng)
    : nominal_(nominal), rng_(rng.split(0x11f7)) {
  FEDML_CHECK(num_nodes >= 1, "network needs at least one link");
  FEDML_CHECK(config.bandwidth_sigma >= 0.0, "bandwidth_sigma must be >= 0");
  FEDML_CHECK(config.latency_s >= 0.0, "latency must be non-negative");
  FEDML_CHECK(config.latency_spread >= 0.0 && config.latency_spread <= 1.0,
              "latency_spread must be in [0, 1]");
  FEDML_CHECK(config.jitter_s >= 0.0, "jitter must be non-negative");
  FEDML_CHECK(config.loss_prob >= 0.0 && config.loss_prob <= 1.0,
              "loss_prob must be in [0, 1]");
  links_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    LinkModel link;
    // Lognormal bandwidth heterogeneity: a sigma of 0 keeps the nominal
    // CommModel rates; uplink and downlink share the node's draw (a slow
    // radio is slow both ways).
    const double scale = config.bandwidth_sigma > 0.0
                             ? std::exp(rng.normal(0.0, config.bandwidth_sigma))
                             : 1.0;
    link.uplink_mbps = nominal.uplink_mbps * scale;
    link.downlink_mbps = nominal.downlink_mbps * scale;
    link.latency_s =
        config.latency_spread > 0.0
            ? config.latency_s * rng.uniform(1.0 - config.latency_spread,
                                             1.0 + config.latency_spread)
            : config.latency_s;
    link.jitter_s = config.jitter_s;
    link.loss_prob = config.loss_prob;
    links_.push_back(link);
  }
}

const LinkModel& NetworkTransport::link(std::size_t node) const {
  FEDML_CHECK(node < links_.size(), "link index out of range");
  return links_[node];
}

double NetworkTransport::uplink_seconds(std::size_t node, double bytes) {
  return fed::CommModel::transfer_seconds(bytes, link(node).uplink_mbps);
}

double NetworkTransport::downlink_seconds(std::size_t node, double bytes) {
  return fed::CommModel::transfer_seconds(bytes, link(node).downlink_mbps);
}

double NetworkTransport::uplink_latency_seconds(std::size_t node) {
  const auto& l = link(node);
  return l.latency_s + (l.jitter_s > 0.0 ? rng_.uniform(0.0, l.jitter_s) : 0.0);
}

double NetworkTransport::downlink_latency_seconds(std::size_t node) {
  const auto& l = link(node);
  return l.latency_s + (l.jitter_s > 0.0 ? rng_.uniform(0.0, l.jitter_s) : 0.0);
}

bool NetworkTransport::uplink_delivered(std::size_t node) {
  const auto& l = link(node);
  if (l.loss_prob <= 0.0) return true;
  if (l.loss_prob >= 1.0) return false;
  return rng_.uniform() >= l.loss_prob;
}

}  // namespace fedml::sim
