#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace fedml::sim {

/// Fault-injection knobs for a simulated edge fleet. Three orthogonal
/// fault families:
///   1. straggler slowdown — a fixed fraction of nodes computes
///      `straggler_slowdown`× slower than its nominal speed;
///   2. message loss — per-message Bernoulli drops, configured on the
///      network links (`NetworkConfig::loss_prob`) and counted here only;
///   3. node crash/rejoin — per-node Poisson crashes with exponential
///      repair times; a crashed node loses its in-flight work and
///      re-downloads the global model when it rejoins.
struct FaultConfig {
  double straggler_fraction = 0.0;  ///< fraction of nodes injected as stragglers
  double straggler_slowdown = 4.0;  ///< compute-time multiplier for stragglers
  double crash_rate_per_hour = 0.0; ///< per-node Poisson crash intensity (while up)
  double mean_repair_s = 60.0;      ///< mean exponential downtime before rejoin
};

/// Deterministic fault process for `n` nodes. All draws come from a
/// dedicated RNG stream split at construction, so fault timelines are a pure
/// function of (seed, config, n) — independent of event interleaving.
class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, std::size_t n, util::Rng rng);

  /// Compute-time multiplier for `node` (1.0, or `straggler_slowdown`).
  [[nodiscard]] double compute_multiplier(std::size_t node) const;
  [[nodiscard]] bool is_straggler(std::size_t node) const;
  [[nodiscard]] std::size_t num_stragglers() const;

  /// Whether the crash process is active at all.
  [[nodiscard]] bool crashes_enabled() const {
    return config_.crash_rate_per_hour > 0.0;
  }

  /// Exponential time-to-next-crash for `node`, in simulated seconds.
  double next_crash_in(std::size_t node);

  /// Exponential repair (downtime) duration for `node`.
  double repair_time(std::size_t node);

  /// Up/down bookkeeping driven by the platform's event handlers.
  void mark_down(std::size_t node);
  void mark_up(std::size_t node);
  [[nodiscard]] bool up(std::size_t node) const;
  [[nodiscard]] std::size_t nodes_up() const { return nodes_up_; }
  [[nodiscard]] std::size_t crashes() const { return crashes_; }
  [[nodiscard]] std::size_t rejoins() const { return rejoins_; }

 private:
  FaultConfig config_;
  std::vector<bool> straggler_;
  std::vector<bool> up_;
  std::vector<util::Rng> streams_;  ///< one crash/repair stream per node
  std::size_t nodes_up_ = 0;
  std::size_t crashes_ = 0;
  std::size_t rejoins_ = 0;
};

}  // namespace fedml::sim
