#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fed/platform.h"
#include "obs/telemetry.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/network.h"
#include "util/mutex.h"

namespace fedml::sim {

/// Configuration of the event-driven execution mode.
struct AsyncConfig {
  std::size_t total_iterations = 500;  ///< T — per-node local iteration budget
  std::size_t local_steps = 10;        ///< T0 — iterations per upload block

  /// Aggregation triggers (at least one must be enabled; both may be):
  /// fire every `deadline_s` of simulated time if updates are pending, and/or
  /// as soon as `quorum` fresh updates are pending (K-of-N).
  double deadline_s = 0.0;   ///< 0 disables the wall-clock trigger
  std::size_t quorum = 0;    ///< 0 disables the K-of-N trigger

  /// Staleness discount: an update based on the global model from `s`
  /// aggregation rounds ago contributes with weight ω_i / (1 + s)^a
  /// (FedAsync-style polynomial decay). 0 = staleness-blind.
  double staleness_exponent = 0.5;
  /// Server mixing rate η: the aggregated batch replaces a fraction
  /// η · Σ(discounted weights) of the global model. With η = 1, no
  /// staleness and every node reporting, the merge equals the synchronous
  /// weighted average.
  double mix_rate = 1.0;

  fed::CommModel comm;  ///< nominal compute speed / bandwidth / overhead
  NetworkConfig net;    ///< heterogeneous link distribution on top of `comm`
  FaultConfig faults;   ///< stragglers and crash/rejoin process

  std::uint64_t seed = 0x51e;
  /// Runaway guard on the event loop (a healthy run fires far fewer).
  std::size_t max_events = 50'000'000;
  /// Optional telemetry. Spans are recorded on the *simulated* clock
  /// (`run` swaps the tracer onto the event queue's virtual time for its
  /// duration), so for a fixed seed the trace is byte-identical across
  /// runs: sim.block / sim.upload intervals on track node+1, sim.round
  /// tiles on track 0, plus sim.platform.* counters. Null = off; must
  /// outlive the platform when set.
  obs::Telemetry* telemetry = nullptr;
};

/// Counters produced by an event-driven run, superset of the synchronous
/// `fed::CommTotals` (whose `sim_seconds` here is the event-clock end time).
struct AsyncTotals {
  fed::CommTotals comm;
  double end_time_s = 0.0;            ///< simulated time when the run drained
  std::size_t blocks_completed = 0;   ///< T0-blocks finished across the fleet
  std::size_t uploads_received = 0;   ///< updates that reached the platform
  std::size_t stale_updates = 0;      ///< received with staleness >= 1 round
  double staleness_sum = 0.0;         ///< Σ staleness over received updates
  std::size_t deadline_rounds = 0;    ///< aggregations fired by the deadline
  std::size_t quorum_rounds = 0;      ///< aggregations fired by the quorum
  std::size_t crashes = 0;
  std::size_t rejoins = 0;
  /// Simulated time of each aggregation round (round r fired at
  /// round_times[r-1]) — lets benches report seconds-to-target.
  std::vector<double> round_times;

  [[nodiscard]] double mean_staleness() const {
    return uploads_received == 0
               ? 0.0
               : staleness_sum / static_cast<double>(uploads_received);
  }
};

/// Event-driven federated platform: FedML's schedule (Algorithm 1) replayed
/// on a discrete-event simulation of the edge network. Nodes compute
/// T0-blocks in simulated time (heterogeneous speeds × injected straggler
/// slowdowns), upload through per-node links (transfer time + latency +
/// jitter + loss), and keep computing without waiting for the fleet. The
/// platform merges pending updates on a wall-clock deadline and/or a K-of-N
/// quorum, discounting each update by its staleness, and broadcasts the new
/// global model back through the same links. Nodes crash and rejoin under a
/// Poisson/exponential fault process, losing in-flight work.
///
/// The run is single-threaded and deterministic: event order is
/// (time, insertion seq) and all randomness flows from `AsyncConfig::seed`
/// via split `util::Rng` streams, so a given (nodes, config) pair yields a
/// byte-identical trajectory on every run.
class AsyncPlatform {
 public:
  using LocalStep = fed::Platform::LocalStep;
  using AggregateHook = fed::Platform::AggregateHook;

  AsyncPlatform(std::vector<fed::EdgeNode> nodes, AsyncConfig config);
  ~AsyncPlatform();

  /// Initial broadcast of θ^0 (instantaneous; the simulation starts with
  /// every node holding the same model, like the synchronous path).
  void broadcast(const nn::ParamList& theta);

  [[nodiscard]] const nn::ParamList& global_params() const { return global_; }
  [[nodiscard]] std::vector<fed::EdgeNode>& nodes() { return nodes_; }
  [[nodiscard]] const std::vector<fed::EdgeNode>& nodes() const {
    return nodes_;
  }
  [[nodiscard]] const FaultInjector& faults() const;
  [[nodiscard]] const NetworkTransport& network() const;

  /// Run the event loop until every node has exhausted its iteration budget
  /// and all in-flight messages have drained. `step` is invoked exactly once
  /// per completed local iteration (crashed blocks are retried, not
  /// skipped); `hook` after every aggregation with the round number.
  AsyncTotals run(const LocalStep& step, const AggregateHook& hook = {});

 private:
  struct Impl;

  /// Single-thread affinity: the platform (like its EventQueue) is
  /// thread-compatible, not thread-safe — `broadcast`/`run` assert they
  /// stay on the binding thread (util::ThreadChecker throws util::Error).
  util::ThreadChecker thread_;
  std::vector<fed::EdgeNode> nodes_;
  AsyncConfig config_;
  nn::ParamList global_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fedml::sim
