#include "sim/async_platform.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "nn/params.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "util/error.h"

namespace fedml::sim {

struct AsyncPlatform::Impl {
  NetworkTransport net;
  FaultInjector faults;

  Impl(const AsyncConfig& cfg, std::size_t n, util::Rng& root)
      : net(cfg.comm, cfg.net, n, root.split(0x6e7)),
        faults(cfg.faults, n, root.split(0xfa0)) {}
};

AsyncPlatform::AsyncPlatform(std::vector<fed::EdgeNode> nodes,
                             AsyncConfig config)
    : nodes_(std::move(nodes)), config_(config) {
  FEDML_CHECK(!nodes_.empty(), "async platform needs at least one edge node");
  FEDML_CHECK(config_.local_steps >= 1, "T0 must be at least 1");
  FEDML_CHECK(config_.total_iterations >= 1, "T must be at least 1");
  FEDML_CHECK(config_.deadline_s >= 0.0, "deadline must be non-negative");
  FEDML_CHECK(config_.quorum <= nodes_.size(),
              "quorum cannot exceed the number of nodes");
  FEDML_CHECK(config_.deadline_s > 0.0 || config_.quorum > 0,
              "enable at least one aggregation trigger (deadline or quorum)");
  FEDML_CHECK(config_.staleness_exponent >= 0.0,
              "staleness_exponent must be non-negative");
  FEDML_CHECK(config_.mix_rate > 0.0 && config_.mix_rate <= 1.0,
              "mix_rate must be in (0, 1]");
  double wsum = 0.0;
  for (const auto& n : nodes_) wsum += n.weight;
  FEDML_CHECK(std::abs(wsum - 1.0) < 1e-6, "node weights must sum to 1");

  util::Rng root(config_.seed);
  impl_ = std::make_unique<Impl>(config_, nodes_.size(), root);
}

AsyncPlatform::~AsyncPlatform() = default;

void AsyncPlatform::broadcast(const nn::ParamList& theta) {
  thread_.check("AsyncPlatform::broadcast");
  global_ = nn::clone_leaves(theta);
  for (auto& n : nodes_) n.params = nn::clone_leaves(theta);
}

const FaultInjector& AsyncPlatform::faults() const { return impl_->faults; }
const NetworkTransport& AsyncPlatform::network() const { return impl_->net; }

AsyncTotals AsyncPlatform::run(const LocalStep& step, const AggregateHook& hook) {
  thread_.check("AsyncPlatform::run");
  FEDML_CHECK(static_cast<bool>(step), "run() needs a local step function");
  FEDML_CHECK(!global_.empty(), "broadcast initial parameters before run()");

  auto& net = impl_->net;
  auto& faults = impl_->faults;
  const std::size_t n = nodes_.size();
  const std::size_t t_budget = config_.total_iterations;
  const auto payload =
      static_cast<double>(nn::serialized_size_bytes(global_));

  EventQueue q;
  AsyncTotals totals;

  // Telemetry on *virtual* time: the tracer's clock follows the event queue
  // for the duration of the run, so every span timestamp is simulated
  // seconds and the whole trace is a pure function of (nodes, config, seed).
  // The scope is declared after `q` so it detaches before `q` dies.
  obs::Telemetry* const tel = config_.telemetry;
  std::optional<obs::Tracer::ClockScope> sim_clock;
  obs::Counter* rounds_counter = nullptr;
  obs::Counter* deadline_counter = nullptr;
  obs::Counter* quorum_counter = nullptr;
  obs::Counter* received_counter = nullptr;
  obs::Counter* dropped_counter = nullptr;
  obs::Counter* stale_counter = nullptr;
  obs::SharedHistogram* staleness_hist = nullptr;
  if (tel != nullptr) {
    sim_clock.emplace(tel->tracer, std::make_shared<obs::FunctionClock>(
                                       [&q] { return q.now(); }));
    rounds_counter = &tel->metrics.counter("sim.platform.rounds");
    deadline_counter = &tel->metrics.counter("sim.platform.rounds_deadline");
    quorum_counter = &tel->metrics.counter("sim.platform.rounds_quorum");
    received_counter = &tel->metrics.counter("sim.platform.uploads_received");
    dropped_counter = &tel->metrics.counter("sim.platform.uploads_dropped");
    stale_counter = &tel->metrics.counter("sim.platform.stale_updates");
    staleness_hist = &tel->metrics.histogram(
        "sim.update.staleness",
        {.bounds = {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0},
         .retain_samples = false});
  }

  /// Per-node simulation state. `version` is the aggregation round of the
  /// node's current base model; staleness of an upload is measured against
  /// the round counter at merge time.
  struct NodeState {
    std::size_t done = 0;     ///< completed local iterations
    std::size_t version = 0;  ///< round of the node's base model
    bool has_block = false;
    double block_start = 0.0;  ///< sim time the running block started
    EventQueue::EventId block = 0;
    bool has_crash = false;
    EventQueue::EventId crash = 0;
  };
  std::vector<NodeState> st(n);

  struct PendingUpdate {
    std::size_t node;
    std::shared_ptr<nn::ParamList> params;
    std::size_t version;
  };
  std::vector<PendingUpdate> pending;

  std::size_t round = 0;
  std::size_t uploads_in_flight = 0;
  double last_round_end_s = 0.0;  ///< sim.round spans tile track 0

  // Mutually recursive event handlers; declared up-front as std::functions.
  std::function<void(std::size_t)> schedule_block;
  std::function<void(std::size_t)> schedule_crash;
  std::function<void(std::size_t, std::size_t)> finish_block;
  std::function<void(bool)> aggregate;
  std::function<void()> deadline_tick;

  const auto work_remaining = [&] {
    for (std::size_t i = 0; i < n; ++i)
      if (st[i].done < t_budget) return true;
    return false;
  };
  const auto mark_activity = [&] { totals.end_time_s = q.now(); };

  schedule_block = [&](std::size_t i) {
    if (st[i].has_block || !faults.up(i) || st[i].done >= t_budget) return;
    const std::size_t len =
        std::min(config_.local_steps, t_budget - st[i].done);
    const double secs = config_.comm.compute_s_per_step *
                        nodes_[i].compute_speed *
                        faults.compute_multiplier(i) *
                        static_cast<double>(len);
    st[i].has_block = true;
    st[i].block_start = q.now();
    st[i].block = q.schedule_in(secs, [&, i, len] { finish_block(i, len); });
  };

  finish_block = [&](std::size_t i, std::size_t len) {
    st[i].has_block = false;
    mark_activity();
    for (std::size_t s = 1; s <= len; ++s) step(nodes_[i], st[i].done + s);
    st[i].done += len;
    totals.blocks_completed += 1;
    if (tel != nullptr) {
      obs::SpanRecord block_span;
      block_span.name = "sim.block";
      block_span.start_s = st[i].block_start;
      block_span.end_s = q.now();
      block_span.track = static_cast<std::uint32_t>(i) + 1;
      block_span.args = {{"node", static_cast<double>(i)},
                         {"len", static_cast<double>(len)}};
      tel->tracer.record(std::move(block_span));
    }

    // Upload the block's result. Airtime is consumed whether or not the
    // message survives (matching the synchronous accounting of failed
    // uploads at raw payload size).
    totals.comm.bytes_up += payload;
    if (net.uplink_delivered(i)) {
      const double delay =
          net.uplink_latency_seconds(i) + net.uplink_seconds(i, payload);
      if (tel != nullptr) {
        obs::SpanRecord upload_span;
        upload_span.name = "sim.upload";
        upload_span.start_s = q.now();
        upload_span.end_s = q.now() + delay;
        upload_span.track = static_cast<std::uint32_t>(i) + 1;
        upload_span.args = {{"node", static_cast<double>(i)}};
        tel->tracer.record(std::move(upload_span));
      }
      auto snapshot =
          std::make_shared<nn::ParamList>(nn::clone_leaves(nodes_[i].params));
      const std::size_t version = st[i].version;
      ++uploads_in_flight;
      q.schedule_in(delay, [&, i, snapshot, version] {
        --uploads_in_flight;
        mark_activity();
        totals.uploads_received += 1;
        if (received_counter != nullptr) received_counter->add();
        pending.push_back({i, snapshot, version});
        if (config_.quorum > 0 && pending.size() >= config_.quorum)
          aggregate(/*by_quorum=*/true);
      });
    } else {
      totals.comm.uploads_dropped += 1;
      if (dropped_counter != nullptr) dropped_counter->add();
    }

    if (st[i].done >= t_budget) {
      // Retired: stop this node's crash process so far-future crash events
      // do not linger in the queue.
      if (st[i].has_crash) {
        q.cancel(st[i].crash);
        st[i].has_crash = false;
      }
      return;
    }
    // Fully asynchronous: keep computing from the local model immediately;
    // a fresher global model is adopted whenever a broadcast arrives.
    schedule_block(i);
  };

  aggregate = [&](bool by_quorum) {
    if (pending.empty()) return;
    mark_activity();

    // Staleness-discounted weights: ω_i / (1 + s)^a at merge time.
    std::vector<nn::ParamList> lists;
    std::vector<double> weights;
    lists.reserve(pending.size());
    weights.reserve(pending.size());
    double mass = 0.0;
    const std::size_t merged = pending.size();
    for (auto& u : pending) {
      const auto s = static_cast<double>(round - u.version);
      if (round > u.version) {
        totals.stale_updates += 1;
        if (stale_counter != nullptr) stale_counter->add();
      }
      if (staleness_hist != nullptr) staleness_hist->record(s);
      totals.staleness_sum += s;
      const double w = nodes_[u.node].weight *
                       std::pow(1.0 + s, -config_.staleness_exponent);
      lists.push_back(std::move(*u.params));
      weights.push_back(w);
      mass += w;
    }
    pending.clear();
    for (auto& w : weights) w /= mass;
    const nn::ParamList batch = nn::weighted_average(lists, weights);

    // Server mixing: the batch replaces a fraction m of the global model,
    // proportional to the discounted weight it carries. Full fresh
    // participation at η = 1 gives m = Σω_i = 1 — the synchronous average.
    const double m = std::min(1.0, config_.mix_rate * mass);
    global_ = nn::weighted_average({global_, batch}, {1.0 - m, m});

    round += 1;
    totals.round_times.push_back(q.now());
    totals.comm.aggregations += 1;
    if (by_quorum)
      totals.quorum_rounds += 1;
    else
      totals.deadline_rounds += 1;
    if (tel != nullptr) {
      rounds_counter->add();
      (by_quorum ? quorum_counter : deadline_counter)->add();
      obs::SpanRecord round_span;
      round_span.name = "sim.round";
      round_span.start_s = last_round_end_s;
      round_span.end_s = q.now();
      round_span.track = 0;
      round_span.args = {{"round", static_cast<double>(round)},
                         {"merged", static_cast<double>(merged)},
                         {"by_quorum", by_quorum ? 1.0 : 0.0}};
      tel->tracer.record(std::move(round_span));
      last_round_end_s = q.now();
    }
    if (hook) hook(round, global_);

    // Broadcast to every node that is currently up. Delivery is per-link:
    // round overhead + propagation + transfer. A node crashed while the
    // model is in flight misses it and re-syncs on rejoin instead.
    auto snapshot = std::make_shared<nn::ParamList>(nn::clone_leaves(global_));
    for (std::size_t i = 0; i < n; ++i) {
      if (!faults.up(i)) continue;
      totals.comm.bytes_down += payload;
      const double delay = net.round_overhead_seconds() +
                           net.downlink_latency_seconds(i) +
                           net.downlink_seconds(i, payload);
      const std::size_t version = round;
      q.schedule_in(delay, [&, i, snapshot, version] {
        if (!faults.up(i)) return;
        if (version <= st[i].version) return;  // stale broadcast overtaken
        mark_activity();
        nodes_[i].params = nn::clone_leaves(*snapshot);
        st[i].version = version;
      });
    }
  };

  schedule_crash = [&](std::size_t i) {
    if (!faults.crashes_enabled()) return;
    st[i].has_crash = true;
    st[i].crash = q.schedule_in(faults.next_crash_in(i), [&, i] {
      st[i].has_crash = false;
      if (!faults.up(i)) return;
      if (st[i].done >= t_budget && !st[i].has_block) return;  // retired
      mark_activity();
      faults.mark_down(i);
      if (st[i].has_block) {  // in-flight block is lost with the node
        q.cancel(st[i].block);
        st[i].has_block = false;
      }
      q.schedule_in(faults.repair_time(i), [&, i] {
        faults.mark_up(i);
        if (st[i].done >= t_budget) return;  // retired while down: bookkeeping only
        mark_activity();
        // Re-sync: download the current global model before resuming.
        totals.comm.bytes_down += payload;
        const double delay =
            net.downlink_latency_seconds(i) + net.downlink_seconds(i, payload);
        auto snapshot =
            std::make_shared<nn::ParamList>(nn::clone_leaves(global_));
        const std::size_t version = round;
        q.schedule_in(delay, [&, i, snapshot, version] {
          if (!faults.up(i)) return;  // crashed again before the download landed
          mark_activity();
          nodes_[i].params = nn::clone_leaves(*snapshot);
          st[i].version = std::max(st[i].version, version);
          schedule_block(i);
        });
        schedule_crash(i);
      });
    });
  };

  deadline_tick = [&] {
    q.schedule_in(config_.deadline_s, [&] {
      aggregate(/*by_quorum=*/false);
      if (work_remaining() || uploads_in_flight > 0 || !pending.empty())
        deadline_tick();
    });
  };

  for (std::size_t i = 0; i < n; ++i) {
    schedule_block(i);
    schedule_crash(i);
  }
  if (config_.deadline_s > 0.0) deadline_tick();

  q.run(config_.max_events);
  FEDML_CHECK(q.empty(), "async simulation exceeded max_events — runaway "
                         "event loop (check deadline/fault configuration)");

  // Final flush: updates that arrived after the last trigger still count.
  aggregate(/*by_quorum=*/false);

  totals.comm.sim_seconds = totals.end_time_s;
  totals.crashes = faults.crashes();
  totals.rejoins = faults.rejoins();
  if (tel != nullptr) {
    tel->metrics.counter("sim.platform.crashes").add(totals.crashes);
    tel->metrics.counter("sim.platform.rejoins").add(totals.rejoins);
    tel->metrics.gauge("sim.platform.end_time_s").set(totals.end_time_s);
    tel->metrics.gauge("sim.platform.mean_staleness")
        .set(totals.mean_staleness());
  }
  return totals;
}

}  // namespace fedml::sim
