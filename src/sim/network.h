#pragma once

#include <cstddef>
#include <vector>

#include "fed/comm.h"
#include "fed/transport.h"
#include "util/rng.h"

namespace fedml::sim {

/// One edge node's point-to-point link to the platform. Drawn once per node
/// at fleet construction; per-message jitter and loss are sampled at send
/// time from the transport's RNG stream.
struct LinkModel {
  double uplink_mbps = 10.0;
  double downlink_mbps = 50.0;
  double latency_s = 0.0;   ///< one-way propagation delay
  double jitter_s = 0.0;    ///< uniform [0, jitter_s) added per message
  double loss_prob = 0.0;   ///< per-message uplink Bernoulli loss
};

/// Distributional description of a heterogeneous edge network. Nominal
/// bandwidths/overhead come from the analytical `fed::CommModel`; each
/// node's link scales them by a lognormal(0, bandwidth_sigma) draw (the same
/// family the straggler compute model uses) and adds propagation
/// latency/jitter/loss.
struct NetworkConfig {
  double bandwidth_sigma = 0.0;  ///< lognormal spread of per-link bandwidth
  double latency_s = 0.0;        ///< mean one-way propagation delay
  double latency_spread = 0.0;   ///< per-link latency drawn uniform in mean·[1−s, 1+s]
  double jitter_s = 0.0;         ///< per-message jitter bound
  double loss_prob = 0.0;        ///< per-message uplink loss probability
};

/// Heterogeneous multi-link `fed::Transport`: one `LinkModel` per node,
/// drawn deterministically from an RNG stream at construction. With a
/// default-constructed `NetworkConfig` every link equals the nominal
/// `CommModel` and the behaviour (though not the latency bookkeeping — this
/// transport is meant for the event-driven path) matches `IdealTransport`.
class NetworkTransport final : public fed::Transport {
 public:
  NetworkTransport(const fed::CommModel& nominal, const NetworkConfig& config,
                   std::size_t num_nodes, util::Rng rng);

  double uplink_seconds(std::size_t node, double bytes) override;
  double downlink_seconds(std::size_t node, double bytes) override;
  double uplink_latency_seconds(std::size_t node) override;
  double downlink_latency_seconds(std::size_t node) override;
  [[nodiscard]] double round_overhead_seconds() const override {
    return nominal_.per_round_overhead_s;
  }
  bool uplink_delivered(std::size_t node) override;

  [[nodiscard]] const LinkModel& link(std::size_t node) const;
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }

 private:
  fed::CommModel nominal_;
  std::vector<LinkModel> links_;
  util::Rng rng_;  ///< per-message jitter/loss stream
};

}  // namespace fedml::sim
