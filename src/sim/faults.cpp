#include "sim/faults.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace fedml::sim {

namespace {

/// Inverse-CDF exponential draw with the given mean (mean 0 → 0).
double exponential(util::Rng& rng, double mean) {
  if (mean <= 0.0) return 0.0;
  // uniform() ∈ [0, 1): 1 − u ∈ (0, 1], so the log is finite.
  return -mean * std::log(1.0 - rng.uniform());
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config, std::size_t n,
                             util::Rng rng)
    : config_(config), straggler_(n, false), up_(n, true), nodes_up_(n) {
  FEDML_CHECK(n >= 1, "fault injector needs at least one node");
  FEDML_CHECK(config.straggler_fraction >= 0.0 &&
                  config.straggler_fraction <= 1.0,
              "straggler_fraction must be in [0, 1]");
  FEDML_CHECK(config.straggler_slowdown >= 1.0,
              "straggler_slowdown must be >= 1 (it multiplies compute time)");
  FEDML_CHECK(config.crash_rate_per_hour >= 0.0,
              "crash_rate_per_hour must be non-negative");
  FEDML_CHECK(config.mean_repair_s > 0.0, "mean_repair_s must be positive");

  // Choose stragglers by sampling without replacement so the injected count
  // is exact, not merely expected.
  util::Rng pick = rng.split(0xfa17);
  const auto count = static_cast<std::size_t>(
      std::llround(config.straggler_fraction * static_cast<double>(n)));
  for (const auto i : pick.sample_without_replacement(n, std::min(count, n)))
    straggler_[i] = true;

  streams_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    streams_.push_back(rng.split(0xc4a5 + i));
}

double FaultInjector::compute_multiplier(std::size_t node) const {
  return is_straggler(node) ? config_.straggler_slowdown : 1.0;
}

bool FaultInjector::is_straggler(std::size_t node) const {
  FEDML_CHECK(node < straggler_.size(), "fault injector node out of range");
  return straggler_[node];
}

std::size_t FaultInjector::num_stragglers() const {
  return static_cast<std::size_t>(
      std::count(straggler_.begin(), straggler_.end(), true));
}

double FaultInjector::next_crash_in(std::size_t node) {
  FEDML_CHECK(node < streams_.size(), "fault injector node out of range");
  if (!crashes_enabled()) return 0.0;
  return exponential(streams_[node], 3600.0 / config_.crash_rate_per_hour);
}

double FaultInjector::repair_time(std::size_t node) {
  FEDML_CHECK(node < streams_.size(), "fault injector node out of range");
  return exponential(streams_[node], config_.mean_repair_s);
}

void FaultInjector::mark_down(std::size_t node) {
  FEDML_CHECK(node < up_.size(), "fault injector node out of range");
  if (!up_[node]) return;
  up_[node] = false;
  --nodes_up_;
  ++crashes_;
}

void FaultInjector::mark_up(std::size_t node) {
  FEDML_CHECK(node < up_.size(), "fault injector node out of range");
  if (up_[node]) return;
  up_[node] = true;
  ++nodes_up_;
  ++rejoins_;
}

bool FaultInjector::up(std::size_t node) const {
  FEDML_CHECK(node < up_.size(), "fault injector node out of range");
  return up_[node];
}

}  // namespace fedml::sim
