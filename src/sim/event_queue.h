#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/mutex.h"

namespace fedml::sim {

/// Deterministic discrete-event scheduler keyed on simulated time.
///
/// Events are opaque callbacks; firing order is (time, insertion sequence),
/// so simultaneous events run FIFO and a run is a pure function of the
/// schedule calls — no wall clock, no thread scheduling, no hash-order
/// dependence. All simulator randomness lives in the callbacks' own
/// `util::Rng` streams, never in the queue itself.
///
/// Thread-COMPATIBLE, not thread-safe: determinism requires a single
/// driving thread, so every mutating call asserts (via util::ThreadChecker,
/// throwing util::Error) that it runs on the thread that first used the
/// queue — a cross-thread `schedule_*` would otherwise corrupt the heap
/// silently under a data race.
class EventQueue {
 public:
  using EventId = std::uint64_t;

  /// Schedule `fn` at absolute simulated time `at` (>= now()). Returns an id
  /// usable with `cancel`.
  EventId schedule_at(double at, std::function<void()> fn);

  /// Schedule `fn` `delay` simulated seconds from now (delay >= 0).
  EventId schedule_in(double delay, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired (or unknown) id is
  /// a no-op; returns whether something was actually cancelled.
  bool cancel(EventId id);

  /// Pop and fire the earliest pending event, advancing now(). Returns false
  /// when the queue is empty.
  bool step();

  /// Drain the queue (events may schedule further events). Stops after
  /// `max_events` fires as a runaway guard; returns the number fired.
  std::size_t run(std::size_t max_events = kNoLimit);

  /// Current simulated time: the firing time of the last event stepped.
  [[nodiscard]] double now() const { return now_; }

  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of pending (non-cancelled) events.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Total events fired so far.
  [[nodiscard]] std::uint64_t fired() const { return fired_; }

  static constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);

 private:
  struct Entry {
    double time;
    EventId id;  ///< insertion sequence — FIFO tie-break and cancel handle
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  util::ThreadChecker thread_;  ///< single-thread affinity (first use binds)
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_ids_;  ///< scheduled, not yet fired
  std::unordered_set<EventId> cancelled_;    ///< awaiting lazy heap removal
  double now_ = 0.0;
  EventId next_id_ = 0;
  std::size_t live_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace fedml::sim
