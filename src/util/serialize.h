#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/error.h"

namespace fedml::util {

/// 64-bit FNV-1a hash over a byte range. Used for checkpoint payload
/// checksums and adapted-parameter cache keys; pass a previous result as
/// `h` to chain ranges.
inline std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n,
                           std::uint64_t h = 0xcbf29ce484222325ull) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Append-only binary buffer used to serialize model parameters for the
/// simulated platform/edge uplink. Little-endian POD layout; this is a
/// simulator, so we only need a self-consistent wire format plus an accurate
/// byte count for the communication-cost model.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(v); }
  void write_u32(std::uint32_t v) { write_pod(v); }
  void write_u64(std::uint64_t v) { write_pod(v); }
  void write_i64(std::int64_t v) { write_pod(v); }
  void write_f64(double v) { write_pod(v); }

  void write_bytes(const std::uint8_t* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }

  void write_f64_span(const double* data, std::size_t n) {
    write_u64(n);
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), bytes, bytes + n * sizeof(double));
  }

  void write_string(const std::string& s) {
    write_u64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void write_pod(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));
  }

  std::vector<std::uint8_t> buf_;
};

/// Sequential reader over a ByteWriter buffer; throws util::Error on
/// truncated input.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t read_u8() { return read_pod<std::uint8_t>(); }
  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  std::int64_t read_i64() { return read_pod<std::int64_t>(); }
  double read_f64() { return read_pod<double>(); }

  std::vector<std::uint8_t> read_bytes(std::size_t n) {
    require(n);
    std::vector<std::uint8_t> out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::vector<double> read_f64_vector() {
    const auto n = read_u64();
    // Validate the COUNT before computing a byte size: a hostile length
    // prefix near 2^64 would overflow `n * sizeof(double)` and sail past a
    // naive bounds check straight into out-of-bounds reads.
    FEDML_CHECK(n <= remaining() / sizeof(double), "truncated buffer");
    std::vector<double> v(n);
    std::memcpy(v.data(), buf_.data() + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return v;
  }

  std::string read_string() {
    const auto n = read_u64();
    require(n);
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }

  /// Current read offset into the underlying buffer (bytes consumed so far).
  [[nodiscard]] std::size_t position() const { return pos_; }

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    require(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void require(std::size_t n) {
    // `n <= size - pos` rather than `pos + n <= size`: the latter overflows
    // for attacker-controlled n near SIZE_MAX and accepts anything.
    FEDML_CHECK(n <= buf_.size() - pos_, "truncated buffer");
  }

  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

}  // namespace fedml::util
