#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace fedml::util {

/// Log severities, ordered.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal process-wide logger. Messages below the global level are
/// discarded before formatting; the sink defaults to stderr and can be
/// replaced (tests capture output this way). Thread-safe for concurrent
/// emission (single atomic level; sink swaps are not expected mid-run).
///
/// Shutdown: the sink slot is a function-local static, so during static
/// destruction it may be torn down while other threads (or later static
/// destructors) still log. Once the slot is destroyed, messages fall back
/// to stderr instead of touching the dead sink, and the slot's destructor
/// flushes stderr so buffered diagnostics are not silently dropped at exit.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Global minimum level (default kWarning — libraries should be quiet).
  static LogLevel level();
  static void set_level(LogLevel level);

  /// Replace the sink; pass nullptr to restore the default stderr sink.
  /// No-op once the sink slot has been destroyed at shutdown.
  static void set_sink(Sink sink);

  /// Emit (used by the FEDML_LOG macro; callable directly too).
  static void write(LogLevel level, const std::string& message);

  /// Flush the default sink's stream (stderr). Custom sinks own their
  /// buffering; this only guarantees the fallback/default path is flushed.
  static void flush();

  /// True iff a message at `level` would be emitted.
  static bool enabled(LogLevel level) { return level >= Log::level(); }
};

namespace detail {
/// Stream-style message builder that emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Log::write(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

/// Test-only: pretend the sink slot has been destroyed (true) or restore
/// normal operation (false). Lets tests exercise the shutdown fallback
/// without actually running static destructors.
void simulate_sink_shutdown(bool shut_down);
}  // namespace detail

}  // namespace fedml::util

/// Stream-style logging, e.g. FEDML_LOG(kInfo) << "round " << r;
/// The message is only formatted if the level is enabled.
#define FEDML_LOG(severity)                                              \
  if (!::fedml::util::Log::enabled(::fedml::util::LogLevel::severity)) { \
  } else                                                                 \
    ::fedml::util::detail::LogMessage(::fedml::util::LogLevel::severity)
