#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/annotations.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"

namespace fedml::util {

/// Fixed-size worker pool used to run per-node local training in parallel
/// within a federated round. Tasks are arbitrary callables; `submit` returns
/// a future. `parallel_for` is the common entry point: it preserves
/// determinism because each index's work is independent (each node owns its
/// RNG stream), so chunking and scheduling order cannot change results.
class ThreadPool {
 public:
  /// Spawn `num_threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task, returning a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      LockGuard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run body(i) for i in [0, n), blocking until all complete. Indices are
  /// dispatched in contiguous chunks (≈4 per worker) so large n does not
  /// allocate n tasks/futures; within a chunk indices run in order, and an
  /// exception skips the rest of its own chunk only. Exceptions from tasks
  /// are rethrown (first one wins).
  ///
  /// When `n < min_grain` the loop runs inline on the calling thread with no
  /// task dispatch at all — no lock, no queue traffic, no futures — so small
  /// inner-loop batches don't pay pool overhead just because a pool exists.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    std::size_t min_grain = 1);

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  /// Written once in the constructor, then immutable; workers only read
  /// their own entry via `this`, so it needs no lock.
  std::vector<std::thread> workers_;
  Mutex mutex_{lock_rank::kThreadPool, "ThreadPool::mutex_"};
  CondVar cv_;
  std::queue<std::function<void()>> queue_ FEDML_GUARDED_BY(mutex_);
  bool stop_ FEDML_GUARDED_BY(mutex_) = false;
};

}  // namespace fedml::util
