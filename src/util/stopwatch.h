#pragma once

#include <chrono>

namespace fedml::util {

/// Wall-clock stopwatch for harness reporting.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fedml::util
