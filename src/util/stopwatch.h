#pragma once

#include <chrono>

namespace fedml::util {

/// Wall-clock stopwatch for harness reporting.
///
/// Library code (src/) should prefer `obs::TraceSpan` / `obs::ScopedTimer`,
/// which capture the same interval AND feed the telemetry layer — the repo
/// lint (scripts/lint.py, rule `stopwatch`) flags new direct uses outside
/// util/ and obs/. `Tracer::span_since(name, watch)` converts an existing
/// stopwatch call site into a span in one line.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()), lap_(start_) {}

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Seconds since the last lap()/reset() (or construction), restarting the
  /// lap timer; the total `seconds()` is unaffected. For timing consecutive
  /// phases with one stopwatch.
  double lap() {
    const auto now = clock::now();
    const double s = std::chrono::duration<double>(now - lap_).count();
    lap_ = now;
    return s;
  }

  void reset() {
    start_ = clock::now();
    lap_ = start_;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
  clock::time_point lap_;
};

}  // namespace fedml::util
