#include "util/cli.h"

#include <algorithm>

#include "util/error.h"

namespace fedml::util {

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    FEDML_CHECK(arg.rfind("--", 0) == 0, "expected --key[=value], got: " + arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      options_[arg] = "true";
    } else {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

std::string Cli::get_string(const std::string& key, const std::string& def) {
  known_.push_back(key);
  const auto it = options_.find(key);
  return it == options_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t def) {
  known_.push_back(key);
  const auto it = options_.find(key);
  if (it == options_.end()) return def;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    FEDML_THROW("option --" + key + " expects an integer, got: " + it->second);
  }
}

double Cli::get_double(const std::string& key, double def) {
  known_.push_back(key);
  const auto it = options_.find(key);
  if (it == options_.end()) return def;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    FEDML_THROW("option --" + key + " expects a number, got: " + it->second);
  }
}

bool Cli::get_flag(const std::string& key) {
  known_.push_back(key);
  const auto it = options_.find(key);
  return it != options_.end() && it->second != "false" && it->second != "0";
}

void Cli::finish() const {
  std::string unknown;
  for (const auto& [key, value] : options_) {
    (void)value;
    if (std::find(known_.begin(), known_.end(), key) == known_.end()) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "--" + key;
    }
  }
  FEDML_CHECK(unknown.empty(), "unknown options for " + program_ + ": " + unknown);
}

}  // namespace fedml::util
