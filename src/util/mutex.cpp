#include "util/mutex.h"

#include <cstddef>
#include <sstream>

#include "util/error.h"

namespace fedml::util {

namespace {

/// Ranked mutexes this thread currently holds, in acquisition order.
/// Unranked mutexes never appear here, so the common case costs nothing.
///
/// Deliberately a fixed-size POD array, not a std::vector: trivially
/// destructible thread-locals are never torn down, so locking still works
/// during static destruction at process exit (the log sink's shutdown guard
/// takes its mutex from a static destructor, after this thread's non-trivial
/// thread_local destructors have already run). The rank hierarchy is
/// strictly increasing per thread, so the depth is bounded by the number of
/// distinct ranks — 16 is generous.
constexpr std::size_t kMaxHeldRanked = 16;
thread_local const Mutex* t_held_ranked[kMaxHeldRanked];
thread_local std::size_t t_held_count = 0;

[[noreturn]] void throw_rank_violation(const Mutex& acquiring,
                                       const Mutex& held) {
  std::ostringstream os;
  os << "lock-rank violation: acquiring '" << acquiring.name() << "' (rank "
     << acquiring.rank() << ") while holding '" << held.name() << "' (rank "
     << held.rank()
     << ") — ranked locks must be acquired in strictly increasing rank "
        "(see src/util/lock_ranks.h)";
  FEDML_THROW(os.str());
}

/// Throws before we ever block on the underlying mutex, so an inversion
/// surfaces as a clean error instead of a deadlock.
void check_rank_order(const Mutex& m) {
  for (std::size_t i = 0; i < t_held_count; ++i) {
    if (t_held_ranked[i]->rank() >= m.rank())
      throw_rank_violation(m, *t_held_ranked[i]);
  }
}

void note_acquired(const Mutex& m) {
  FEDML_CHECK(t_held_count < kMaxHeldRanked,
              "too many ranked mutexes held by one thread");
  t_held_ranked[t_held_count++] = &m;
}

void note_released(const Mutex& m) {
  // Normally the top of the stack; search from the back to tolerate
  // out-of-order release (legal with unique locks).
  for (std::size_t i = t_held_count; i-- > 0;) {
    if (t_held_ranked[i] == &m) {
      for (std::size_t j = i + 1; j < t_held_count; ++j)
        t_held_ranked[j - 1] = t_held_ranked[j];
      --t_held_count;
      return;
    }
  }
}

}  // namespace

void Mutex::lock() {
  if (rank_ != kNoRank) check_rank_order(*this);
  m_.lock();
  if (rank_ != kNoRank) note_acquired(*this);
}

void Mutex::unlock() {
  if (rank_ != kNoRank) note_released(*this);
  m_.unlock();
}

bool Mutex::try_lock() {
  if (rank_ != kNoRank) check_rank_order(*this);
  const bool got = m_.try_lock();
  if (got && rank_ != kNoRank) note_acquired(*this);
  return got;
}

void ThreadChecker::check(const char* what) const {
  const auto self = std::this_thread::get_id();
  auto bound = owner_.load(std::memory_order_relaxed);
  if (bound == std::thread::id()) {
    // First use binds ownership. On a race to bind, the loser falls through
    // to the mismatch check below with the winner's id.
    if (owner_.compare_exchange_strong(bound, self, std::memory_order_relaxed))
      return;
  }
  if (bound != self) {
    FEDML_THROW(std::string(what) +
                ": called from a different thread than its owner — this "
                "class is thread-compatible, not thread-safe (wrap access "
                "in external synchronization or use one instance per "
                "thread)");
  }
}

}  // namespace fedml::util
