#include "util/mutex.h"

#include <sstream>
#include <vector>

#include "util/error.h"

namespace fedml::util {

namespace {

/// Ranked mutexes this thread currently holds, in acquisition order.
/// Unranked mutexes never appear here, so the common case costs nothing.
thread_local std::vector<const Mutex*> t_held_ranked;

[[noreturn]] void throw_rank_violation(const Mutex& acquiring,
                                       const Mutex& held) {
  std::ostringstream os;
  os << "lock-rank violation: acquiring '" << acquiring.name() << "' (rank "
     << acquiring.rank() << ") while holding '" << held.name() << "' (rank "
     << held.rank()
     << ") — ranked locks must be acquired in strictly increasing rank "
        "(see src/util/lock_ranks.h)";
  FEDML_THROW(os.str());
}

/// Throws before we ever block on the underlying mutex, so an inversion
/// surfaces as a clean error instead of a deadlock.
void check_rank_order(const Mutex& m) {
  for (const Mutex* held : t_held_ranked) {
    if (held->rank() >= m.rank()) throw_rank_violation(m, *held);
  }
}

void note_acquired(const Mutex& m) { t_held_ranked.push_back(&m); }

void note_released(const Mutex& m) {
  // Normally the top of the stack; search from the back to tolerate
  // out-of-order release (legal with unique locks).
  for (auto it = t_held_ranked.rbegin(); it != t_held_ranked.rend(); ++it) {
    if (*it == &m) {
      t_held_ranked.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

void Mutex::lock() {
  if (rank_ != kNoRank) check_rank_order(*this);
  m_.lock();
  if (rank_ != kNoRank) note_acquired(*this);
}

void Mutex::unlock() {
  if (rank_ != kNoRank) note_released(*this);
  m_.unlock();
}

bool Mutex::try_lock() {
  if (rank_ != kNoRank) check_rank_order(*this);
  const bool got = m_.try_lock();
  if (got && rank_ != kNoRank) note_acquired(*this);
  return got;
}

void ThreadChecker::check(const char* what) const {
  const auto self = std::this_thread::get_id();
  auto bound = owner_.load(std::memory_order_relaxed);
  if (bound == std::thread::id()) {
    // First use binds ownership. On a race to bind, the loser falls through
    // to the mismatch check below with the winner's id.
    if (owner_.compare_exchange_strong(bound, self, std::memory_order_relaxed))
      return;
  }
  if (bound != self) {
    FEDML_THROW(std::string(what) +
                ": called from a different thread than its owner — this "
                "class is thread-compatible, not thread-safe (wrap access "
                "in external synchronization or use one instance per "
                "thread)");
  }
}

}  // namespace fedml::util
