#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fedml::util {

/// Error type thrown by FEDML_CHECK / FEDML_THROW. Derives from
/// std::runtime_error so callers can catch either type.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace fedml::util

/// Throw fedml::util::Error with file/line context.
#define FEDML_THROW(msg) \
  ::fedml::util::detail::throw_error(__FILE__, __LINE__, (msg))

/// Precondition/invariant check; always on (cheap relative to the math here).
#define FEDML_CHECK(cond, msg)                                      \
  do {                                                              \
    if (!(cond)) {                                                  \
      ::fedml::util::detail::throw_error(                           \
          __FILE__, __LINE__,                                       \
          std::string("check failed: " #cond " — ") + (msg));       \
    }                                                               \
  } while (false)

/// Debug-only check, compiled out entirely under NDEBUG. For per-element
/// hot-loop assertions (e.g. tensor element bounds) where an always-on
/// FEDML_CHECK is measurably hot; `cond` is NOT evaluated in release
/// builds, so it must be side-effect free. Everything else should keep
/// using FEDML_CHECK.
#ifdef NDEBUG
#define FEDML_DCHECK(cond, msg)  \
  do {                           \
    (void)sizeof((cond) ? 1 : 0); \
  } while (false)
#else
#define FEDML_DCHECK(cond, msg) FEDML_CHECK(cond, msg)
#endif
