#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace fedml::util {

/// Deterministic, splittable random number generator.
///
/// Every experiment owns a root `Rng(seed)`. Per-node / per-phase streams are
/// derived with `split(stream_id)`, which mixes the stream id into the seed
/// with SplitMix64 so streams are statistically independent and — crucially —
/// stable: node 7's stream does not change when the node count changes.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : mixed_seed_(mix(seed)), engine_(mixed_seed_) {}

  /// Derive an independent child stream. Deterministic in (seed, stream_id).
  [[nodiscard]] Rng split(std::uint64_t stream_id) const {
    Rng child(0);
    child.mixed_seed_ = mix(mixed_seed_ ^ mix(stream_id + 0x9e3779b97f4a7c15ULL));
    child.engine_.seed(child.mixed_seed_);
    return child;
  }

  /// Uniform in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal (mean 0, stddev 1).
  double normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

  /// Normal with the given mean/stddev.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Vector of iid normals.
  std::vector<double> normal_vector(std::size_t n, double mean = 0.0,
                                    double stddev = 1.0);

  /// Pareto-flavoured sample count used for "samples per node follows a
  /// power law" (paper Table I). Clamped to [min_value, max_value].
  std::int64_t power_law_count(double exponent, std::int64_t min_value,
                               std::int64_t max_value);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Sample k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Access to the raw engine for std distributions not wrapped above.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t mixed_seed_ = 0;
  std::mt19937_64 engine_;

  /// SplitMix64 finalizer — good avalanche, used purely for seed mixing.
  static std::uint64_t mix(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Bounded Zipf sampler over {0, …, n−1}: P(k) ∝ (k+1)^−s. Rejection-
/// inversion (Hörmann & Derflinger), so a sample is O(1) regardless of n —
/// suitable for drawing item ids and user ids from catalogues of millions
/// without precomputing a CDF. Stateless apart from precomputed constants;
/// determinism follows entirely from the `Rng` passed to `sample`.
class ZipfSampler {
 public:
  /// `n >= 1` elements, exponent `s >= 0` (0 = uniform).
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t n() const { return n_; }
  [[nodiscard]] double exponent() const { return s_; }

  /// Draw one 0-based rank (0 = most popular).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  /// P(rank k), normalized over the n elements (test/analysis helper;
  /// O(n) on first call per sampler is avoided by lazily summing — this is
  /// O(n) each call, use for small n or offline checks only).
  [[nodiscard]] double probability(std::size_t k) const;

 private:
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral_inverse(double u) const;

  std::size_t n_;
  double s_;
  double h_integral_x1_ = 0.0;  ///< H(1.5) − 1
  double h_integral_n_ = 0.0;   ///< H(n + 0.5)
  double threshold_ = 0.0;      ///< fast-accept bound
};

}  // namespace fedml::util
