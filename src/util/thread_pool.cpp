#include "util/thread_pool.h"

#include <algorithm>

namespace fedml::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              std::size_t min_grain) {
  if (n == 0) return;
  if (n < min_grain) {
    // Serial fallback: run on the caller, bypassing the queue entirely.
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Chunked dispatch: ~4 blocks per worker balances load (uneven per-index
  // cost) without allocating one task + future per index for large n.
  const std::size_t chunks = std::min(n, 4 * workers_.size());
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;  // first `extra` chunks get one more
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    futures.push_back(submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
    begin = end;
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fedml::util
