#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>  // lint: allow(raw-mutex) — this IS the wrapper
#include <mutex>  // lint: allow(raw-mutex) — this IS the wrapper
#include <thread>

#include "util/annotations.h"

namespace fedml::util {

/// Annotated mutex: the only lock type library code is allowed to hold
/// (scripts/lint.py rejects raw `std::mutex` & friends outside this file).
///
/// Two additions over `std::mutex`:
///  * clang thread-safety capability annotations, so `-Wthread-safety`
///    statically checks that `FEDML_GUARDED_BY` fields are only touched
///    under the right lock;
///  * an optional lock *rank* (see util/lock_ranks.h). Ranked mutexes
///    assert at runtime that acquisition order is strictly increasing in
///    rank per thread, turning a latent lock-order inversion (deadlock)
///    into an immediate `util::Error` with both lock names in the message.
///    The check is two thread-local vector operations per lock/unlock of a
///    *ranked* mutex and nothing at all for unranked ones, so it stays on
///    in every build type. Default-constructed mutexes are unranked.
class FEDML_CAPABILITY("mutex") Mutex {
 public:
  static constexpr int kNoRank = -1;

  Mutex() = default;
  /// A ranked mutex participates in the lock-order assertion. `name` is
  /// used in violation messages and must outlive the mutex (string literal).
  explicit Mutex(int rank, const char* name) : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FEDML_ACQUIRE();
  void unlock() FEDML_RELEASE();
  bool try_lock() FEDML_TRY_ACQUIRE(true);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] const char* name() const { return name_; }

 private:
  std::mutex m_;  // lint: allow(raw-mutex)
  int rank_ = kNoRank;
  const char* name_ = "unranked";
};

/// RAII exclusive lock over a `util::Mutex` (the `std::lock_guard`
/// replacement; non-movable, never unlocked early).
class FEDML_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) FEDML_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~LockGuard() FEDML_RELEASE() { m_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& m_;
};

/// RAII lock that supports unlock/relock — the shape `CondVar::wait`
/// needs (the `std::unique_lock` replacement). Satisfies BasicLockable so
/// `std::condition_variable_any` can drive it.
class FEDML_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& m) FEDML_ACQUIRE(m) : m_(m), owned_(true) {
    m_.lock();
  }
  ~UniqueLock() FEDML_RELEASE() {
    if (owned_) m_.unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() FEDML_ACQUIRE() {
    m_.lock();
    owned_ = true;
  }
  void unlock() FEDML_RELEASE() {
    owned_ = false;
    m_.unlock();
  }
  [[nodiscard]] bool owns_lock() const { return owned_; }

 private:
  Mutex& m_;
  bool owned_ = false;
};

/// Condition variable paired with `util::Mutex` via `UniqueLock`.
/// Implemented on `std::condition_variable_any`, whose wait goes through
/// `UniqueLock::unlock`/`lock` — so a ranked mutex keeps its lock-order
/// bookkeeping consistent across the wait, and clang's analysis sees the
/// capability held on both sides of it.
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically release `lock`, sleep, and re-acquire before returning.
  /// Callers re-check their predicate in a loop (spurious wakeups), which
  /// also keeps the guarded reads visibly under the lock for the static
  /// analysis — prefer `while (!pred) cv.wait(lock);` over a lambda.
  void wait(UniqueLock& lock) { cv_.wait(lock); }

  /// Timed wait (steady clock). Returns false on timeout, true when
  /// notified — but callers must re-check their predicate either way, same
  /// as `wait`. Deadline- and quorum-driven loops (the network platform's
  /// aggregation trigger) are the intended users.
  bool wait_for(UniqueLock& lock, double seconds) {
    return cv_.wait_for(lock, std::chrono::duration<double>(seconds)) ==
           std::cv_status::no_timeout;
  }

 private:
  std::condition_variable_any cv_;  // lint: allow(raw-mutex)
};

/// Single-thread affinity assertion for thread-COMPATIBLE classes (the
/// discrete-event simulator, the synchronous platform driver): the first
/// `check()` binds the owning thread, every later one throws `util::Error`
/// if called from a different thread. One relaxed atomic load on the hot
/// path, so it stays on in release builds. `reset()` re-binds (for handing
/// an idle object to another thread).
class ThreadChecker {
 public:
  ThreadChecker() = default;
  /// Copying/moving the owning object legitimately hands it to new code —
  /// the copy starts unbound and re-binds on its own first use.
  ThreadChecker(const ThreadChecker&) noexcept {}
  ThreadChecker& operator=(const ThreadChecker&) noexcept { return *this; }

  void check(const char* what) const;
  void reset() { owner_.store(std::thread::id(), std::memory_order_relaxed); }
  /// True when the calling thread is the bound owner (false while unbound —
  /// a query, unlike `check`, never binds).
  [[nodiscard]] bool is_owner() const {
    return owner_.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }

 private:
  mutable std::atomic<std::thread::id> owner_{std::thread::id()};
};

}  // namespace fedml::util
