#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace fedml::util {

/// One table cell: string, integer, or floating point value.
using Cell = std::variant<std::string, std::int64_t, double>;

/// Column-aligned ASCII table used by the benchmark harnesses to print the
/// rows/series the paper reports. Also emits CSV for downstream plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header arity.
  void add_row(std::vector<Cell> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// Render the aligned ASCII form (with a title banner if given).
  void print(std::ostream& os, const std::string& title = "") const;

  /// Render RFC-4180-ish CSV (quotes strings containing commas/quotes).
  void write_csv(std::ostream& os) const;

  /// Convenience: write CSV to a file path; throws util::Error on failure.
  void write_csv_file(const std::string& path) const;

  /// Floating point precision used when rendering doubles (default 4).
  void set_precision(int digits) { precision_ = digits; }

 private:
  [[nodiscard]] std::string render_cell(const Cell& c) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace fedml::util
