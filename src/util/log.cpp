#include "util/log.h"

#include <atomic>
#include <iostream>

#include "util/annotations.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"

namespace fedml::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
// Leaf lock (highest rank): any layer may log while holding its own lock.
Mutex g_sink_mutex{lock_rank::kLogSink, "log::g_sink_mutex"};
Log::Sink& sink_storage() FEDML_REQUIRES(g_sink_mutex) {
  static Log::Sink sink;
  return sink;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Log::set_sink(Sink sink) {
  LockGuard lock(g_sink_mutex);
  sink_storage() = std::move(sink);
}

void Log::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  LockGuard lock(g_sink_mutex);
  if (sink_storage()) {
    sink_storage()(level, message);
  } else {
    std::cerr << "[fedml " << level_name(level) << "] " << message << '\n';
  }
}

}  // namespace fedml::util
