#include "util/log.h"

#include <atomic>
#include <iostream>

#include "util/annotations.h"
#include "util/lock_ranks.h"
#include "util/mutex.h"

namespace fedml::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
// Leaf lock (highest rank): any layer may log while holding its own lock.
Mutex g_sink_mutex{lock_rank::kLogSink, "log::g_sink_mutex"};
// Set (under g_sink_mutex) when the sink slot's static destructor runs; the
// namespace-scope mutex is constructed before the function-local slot and
// therefore destroyed after it, so locking here during shutdown is safe.
std::atomic<bool> g_sink_dead{false};

void write_fallback(LogLevel level, const std::string& message);

/// Holds the user sink so its destructor can publish the shutdown flag:
/// taking the lock first waits out in-flight write() calls, so no thread
/// observes a half-destroyed sink.
struct SinkSlot {
  Log::Sink sink;
  ~SinkSlot() {
    {
      LockGuard lock(g_sink_mutex);
      g_sink_dead.store(true, std::memory_order_release);
    }
    std::cerr.flush();
  }
};

SinkSlot& sink_slot() FEDML_REQUIRES(g_sink_mutex) {
  static SinkSlot slot;
  return slot;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

void write_fallback(LogLevel level, const std::string& message) {
  std::cerr << "[fedml " << level_name(level) << "] " << message << '\n';
}

}  // namespace

LogLevel Log::level() { return g_level.load(std::memory_order_relaxed); }

void Log::set_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void Log::set_sink(Sink sink) {
  if (g_sink_dead.load(std::memory_order_acquire)) return;
  LockGuard lock(g_sink_mutex);
  if (g_sink_dead.load(std::memory_order_relaxed)) return;
  sink_slot().sink = std::move(sink);
}

void Log::write(LogLevel level, const std::string& message) {
  if (!enabled(level)) return;
  if (g_sink_dead.load(std::memory_order_acquire)) {
    write_fallback(level, message);
    return;
  }
  LockGuard lock(g_sink_mutex);
  // Re-check under the lock: the slot destructor publishes the flag while
  // holding g_sink_mutex, so this read is race-free and the sink below is
  // guaranteed alive.
  if (g_sink_dead.load(std::memory_order_relaxed)) {
    write_fallback(level, message);
    return;
  }
  if (sink_slot().sink) {
    sink_slot().sink(level, message);
  } else {
    write_fallback(level, message);
  }
}

void Log::flush() { std::cerr.flush(); }

namespace detail {
void simulate_sink_shutdown(bool shut_down) {
  LockGuard lock(g_sink_mutex);
  g_sink_dead.store(shut_down, std::memory_order_release);
}
}  // namespace detail

}  // namespace fedml::util
