#pragma once

// Clang thread-safety-analysis attribute wrappers.
//
// These macros expand to the corresponding `__attribute__((...))` under
// clang (where `-Wthread-safety` turns them into compile-time lock-usage
// verification) and to nothing elsewhere, so annotated code stays portable
// to gcc/MSVC. The vocabulary follows the capability model documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html; `util::Mutex` /
// `util::LockGuard` / `util::UniqueLock` (util/mutex.h) are the annotated
// primitives the rest of the library locks with — the repo lint
// (scripts/lint.py) rejects raw `std::mutex` outside that wrapper.
//
// Convention: a shared field is declared `FEDML_GUARDED_BY(mutex_)`;
// private helpers that expect the lock already held are declared
// `FEDML_REQUIRES(mutex_)`; anything deliberately outside the analysis
// (e.g. a once-initialised-then-immutable field) says so with
// `FEDML_NO_THREAD_SAFETY_ANALYSIS` plus a comment explaining why.

#if defined(__clang__)
#define FEDML_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FEDML_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a class to be a lockable capability (e.g. util::Mutex).
#define FEDML_CAPABILITY(x) FEDML_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (e.g. util::LockGuard).
#define FEDML_SCOPED_CAPABILITY FEDML_THREAD_ANNOTATION(scoped_lockable)

/// Field/variable may only be accessed while holding the given capability.
#define FEDML_GUARDED_BY(x) FEDML_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding `x`.
#define FEDML_PT_GUARDED_BY(x) FEDML_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (blocking) and does not release it.
#define FEDML_ACQUIRE(...) \
  FEDML_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define FEDML_RELEASE(...) \
  FEDML_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts to acquire the capability; first argument is the return
/// value that signals success, e.g. FEDML_TRY_ACQUIRE(true).
#define FEDML_TRY_ACQUIRE(...) \
  FEDML_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must already hold the capability (exclusively).
#define FEDML_REQUIRES(...) \
  FEDML_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard for re-entrancy).
#define FEDML_EXCLUDES(...) FEDML_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Static acquisition-order declarations between specific mutexes (the
/// runtime complement is util::Mutex's lock-rank assertion).
#define FEDML_ACQUIRED_BEFORE(...) \
  FEDML_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define FEDML_ACQUIRED_AFTER(...) \
  FEDML_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define FEDML_RETURN_CAPABILITY(x) FEDML_THREAD_ANNOTATION(lock_returned(x))

/// Runtime assertion that the capability is held (for code clang cannot see
/// through, e.g. callbacks invoked under an external lock).
#define FEDML_ASSERT_CAPABILITY(x) \
  FEDML_THREAD_ANNOTATION(assert_capability(x))

/// Opt a function out of the analysis entirely. Use sparingly, with a
/// comment; the lint gate counts occurrences to keep this rare.
#define FEDML_NO_THREAD_SAFETY_ANALYSIS \
  FEDML_THREAD_ANNOTATION(no_thread_safety_analysis)
