#pragma once

namespace fedml::util::lock_rank {

// Global lock-acquisition hierarchy.
//
// A thread may only acquire a ranked `util::Mutex` whose rank is STRICTLY
// GREATER than every ranked mutex it already holds; `util::Mutex::lock`
// asserts this at runtime (throwing `util::Error` before blocking, so a
// would-be lock-order inversion surfaces as a test failure instead of a
// once-in-a-blue-moon deadlock). Unranked mutexes (the default constructor)
// opt out of the check entirely.
//
// Ranks are spaced by 10 so a new layer can slot in without renumbering.
// The order encodes "outer layers lock before inner layers": a serving
// request may (now or in the future) consult the registry, then the cache,
// then touch the pool, then log — never the reverse. Today none of these
// locks actually nest (each critical section is leaf-like and released
// before calling into the next layer); the hierarchy exists so that the
// first change which *does* nest them is checked from day one.

inline constexpr int kNetServer = 4;    ///< net::PlatformServer::mutex_ (the
                                        ///< outermost layer: a socket-facing
                                        ///< round driver may call into any
                                        ///< inner layer while coordinating)
inline constexpr int kNetReactor = 6;   ///< net::Reactor::mutex_ (the cross-
                                        ///< thread post/stop queue: the round
                                        ///< driver posts to the reactor while
                                        ///< holding kNetServer, never the
                                        ///< reverse — the reactor invokes
                                        ///< callbacks with no lock held)
inline constexpr int kServer = 10;      ///< serve::AdaptationServer::mutex_
inline constexpr int kRegistry = 20;    ///< serve::ModelRegistry::mutex_ (the
                                        ///< publish-side control lock)
inline constexpr int kRegistryStripe = 24;  ///< serve::ModelRegistry read
                                            ///< stripes: a publish updates
                                            ///< every stripe while holding the
                                            ///< control lock, so stripes rank
                                            ///< strictly inside kRegistry;
                                            ///< readers lock exactly one
inline constexpr int kCache = 30;       ///< serve::AdaptedCache shard mutexes
                                        ///< (one per shard; operations lock
                                        ///< exactly one shard, cross-shard
                                        ///< sweeps lock one at a time)
inline constexpr int kThreadPool = 40;  ///< util::ThreadPool::mutex_
inline constexpr int kNetMeasure = 41;  ///< net::MeasuredTransport::mutex_
                                        ///< (comm accounting; may create obs
                                        ///< handles / record histograms while
                                        ///< held, so it sits just below the
                                        ///< obs ranks)
inline constexpr int kObsRegistry = 42; ///< obs::MetricsRegistry::mutex_ (any
                                        ///< layer may create/look up a metric
                                        ///< handle while holding its own lock)
inline constexpr int kObsFleet = 43;    ///< obs::FleetCollector::mutex_ (the
                                        ///< root's per-origin telemetry sink;
                                        ///< absorbed on the reactor thread,
                                        ///< may snapshot obs buffers while
                                        ///< held, so it sits just above the
                                        ///< registry and below the buffers)
inline constexpr int kObsCollector = 44;///< obs::SharedHistogram / obs::Tracer
                                        ///< buffers (recording is near-leaf:
                                        ///< only the log may nest inside)
inline constexpr int kLogSink = 50;     ///< util::Log sink mutex (leaf: any
                                        ///< layer may log while locked)

}  // namespace fedml::util::lock_rank
