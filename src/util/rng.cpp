#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace fedml::util {

std::vector<double> Rng::normal_vector(std::size_t n, double mean, double stddev) {
  std::vector<double> v(n);
  std::normal_distribution<double> dist(mean, stddev);
  for (auto& x : v) x = dist(engine_);
  return v;
}

std::int64_t Rng::power_law_count(double exponent, std::int64_t min_value,
                                  std::int64_t max_value) {
  FEDML_CHECK(exponent > 1.0, "power-law exponent must exceed 1");
  FEDML_CHECK(min_value >= 1 && max_value >= min_value,
              "power-law bounds must satisfy 1 <= min <= max");
  // Inverse-CDF sampling of a Pareto(min_value, exponent-1) variate.
  const double u = std::max(uniform(), 1e-12);
  const double x =
      static_cast<double>(min_value) / std::pow(u, 1.0 / (exponent - 1.0));
  const auto n = static_cast<std::int64_t>(std::llround(x));
  return std::clamp(n, min_value, max_value);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  FEDML_CHECK(k <= n, "cannot sample more elements than the population size");
  auto idx = permutation(n);
  idx.resize(k);
  return idx;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) : n_(n), s_(s) {
  FEDML_CHECK(n >= 1, "ZipfSampler: need at least one element");
  FEDML_CHECK(s >= 0.0 && std::isfinite(s),
              "ZipfSampler: exponent must be finite and non-negative");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

// H(x) = ∫ t^−s dt: (x^{1−s} − 1)/(1 − s), degenerating to log(x) at s = 1.
double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  // expm1/log1p-free stable form: for s ≈ 1 the generic expression loses
  // precision, so branch on exact equality only (s is a config constant).
  if (s_ == 1.0) return log_x;
  return std::expm1((1.0 - s_) * log_x) / (1.0 - s_);
}

double ZipfSampler::h(double x) const { return std::exp(-s_ * std::log(x)); }

double ZipfSampler::h_integral_inverse(double u) const {
  if (s_ == 1.0) return std::exp(u);
  double t = u * (1.0 - s_);
  // Clamp against log1p's domain edge for u near the distribution tail.
  if (t < -1.0) t = -1.0;
  return std::exp(std::log1p(t) / (1.0 - s_));
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  if (n_ == 1) return 0;
  if (s_ == 0.0)
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_) - 1));
  for (;;) {
    const double u =
        h_integral_n_ + rng.uniform() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    const double n_d = static_cast<double>(n_);
    if (k > n_d) k = n_d;
    // Fast accept near the mode, else the exact rejection test.
    if (k - x <= threshold_ || u >= h_integral(k + 0.5) - h(k)) {
      return static_cast<std::size_t>(k) - 1;
    }
  }
}

double ZipfSampler::probability(std::size_t k) const {
  FEDML_CHECK(k < n_, "ZipfSampler::probability: rank out of range");
  double z = 0.0;
  for (std::size_t i = 0; i < n_; ++i)
    z += std::pow(static_cast<double>(i + 1), -s_);
  return std::pow(static_cast<double>(k + 1), -s_) / z;
}

}  // namespace fedml::util
