#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.h"

namespace fedml::util {

std::vector<double> Rng::normal_vector(std::size_t n, double mean, double stddev) {
  std::vector<double> v(n);
  std::normal_distribution<double> dist(mean, stddev);
  for (auto& x : v) x = dist(engine_);
  return v;
}

std::int64_t Rng::power_law_count(double exponent, std::int64_t min_value,
                                  std::int64_t max_value) {
  FEDML_CHECK(exponent > 1.0, "power-law exponent must exceed 1");
  FEDML_CHECK(min_value >= 1 && max_value >= min_value,
              "power-law bounds must satisfy 1 <= min <= max");
  // Inverse-CDF sampling of a Pareto(min_value, exponent-1) variate.
  const double u = std::max(uniform(), 1e-12);
  const double x =
      static_cast<double>(min_value) / std::pow(u, 1.0 / (exponent - 1.0));
  const auto n = static_cast<std::int64_t>(std::llround(x));
  return std::clamp(n, min_value, max_value);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  FEDML_CHECK(k <= n, "cannot sample more elements than the population size");
  auto idx = permutation(n);
  idx.resize(k);
  return idx;
}

}  // namespace fedml::util
