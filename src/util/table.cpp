#include "util/table.h"

#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace fedml::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FEDML_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<Cell> row) {
  FEDML_CHECK(row.size() == headers_.size(),
              "row arity must match header arity");
  rows_.push_back(std::move(row));
}

std::string Table::render_cell(const Cell& c) const {
  std::ostringstream os;
  if (const auto* s = std::get_if<std::string>(&c)) {
    os << *s;
  } else if (const auto* i = std::get_if<std::int64_t>(&c)) {
    os << *i;
  } else {
    os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  }
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t j = 0; j < headers_.size(); ++j) widths[j] = headers_[j].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t j = 0; j < row.size(); ++j) {
      r.push_back(render_cell(row[j]));
      widths[j] = std::max(widths[j], r.back().size());
    }
    rendered.push_back(std::move(r));
  }

  const auto rule = [&] {
    os << '+';
    for (const auto w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  const auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t j = 0; j < cells.size(); ++j) {
      os << ' ' << cells[j] << std::string(widths[j] - cells[j].size(), ' ') << " |";
    }
    os << '\n';
  };

  if (!title.empty()) os << "== " << title << " ==\n";
  rule();
  emit(headers_);
  rule();
  for (const auto& r : rendered) emit(r);
  rule();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t j = 0; j < headers_.size(); ++j) {
    if (j) os << ',';
    os << csv_escape(headers_[j]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j) os << ',';
      os << csv_escape(render_cell(row[j]));
    }
    os << '\n';
  }
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream f(path);
  FEDML_CHECK(f.good(), "cannot open CSV output file: " + path);
  write_csv(f);
}

}  // namespace fedml::util
