#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fedml::util {

/// Minimal `--key=value` / `--flag` command-line parser for the bench and
/// example binaries. Unknown keys are rejected only when `finish()` is
/// called, so harnesses declare every option they read.
class Cli {
 public:
  Cli(int argc, char** argv);

  /// Read an option with a default; records the key as known.
  std::string get_string(const std::string& key, const std::string& def);
  std::int64_t get_int(const std::string& key, std::int64_t def);
  double get_double(const std::string& key, double def);
  bool get_flag(const std::string& key);

  /// Throws util::Error listing any unrecognised options.
  void finish() const;

 private:
  std::map<std::string, std::string> options_;
  std::vector<std::string> known_;
  std::string program_;
};

}  // namespace fedml::util
