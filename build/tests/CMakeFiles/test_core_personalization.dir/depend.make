# Empty dependencies file for test_core_personalization.
# This may be replaced when dependencies are built.
