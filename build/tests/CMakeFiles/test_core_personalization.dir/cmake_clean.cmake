file(REMOVE_RECURSE
  "CMakeFiles/test_core_personalization.dir/test_core_personalization.cpp.o"
  "CMakeFiles/test_core_personalization.dir/test_core_personalization.cpp.o.d"
  "test_core_personalization"
  "test_core_personalization.pdb"
  "test_core_personalization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_personalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
