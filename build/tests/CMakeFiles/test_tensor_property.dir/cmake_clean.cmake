file(REMOVE_RECURSE
  "CMakeFiles/test_tensor_property.dir/test_tensor_property.cpp.o"
  "CMakeFiles/test_tensor_property.dir/test_tensor_property.cpp.o.d"
  "test_tensor_property"
  "test_tensor_property.pdb"
  "test_tensor_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
