file(REMOVE_RECURSE
  "CMakeFiles/test_nn_checkpoint.dir/test_nn_checkpoint.cpp.o"
  "CMakeFiles/test_nn_checkpoint.dir/test_nn_checkpoint.cpp.o.d"
  "test_nn_checkpoint"
  "test_nn_checkpoint.pdb"
  "test_nn_checkpoint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
