# Empty dependencies file for test_nn_checkpoint.
# This may be replaced when dependencies are built.
