# Empty compiler generated dependencies file for test_nn_module.
# This may be replaced when dependencies are built.
