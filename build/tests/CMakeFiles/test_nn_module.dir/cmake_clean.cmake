file(REMOVE_RECURSE
  "CMakeFiles/test_nn_module.dir/test_nn_module.cpp.o"
  "CMakeFiles/test_nn_module.dir/test_nn_module.cpp.o.d"
  "test_nn_module"
  "test_nn_module.pdb"
  "test_nn_module[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_module.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
