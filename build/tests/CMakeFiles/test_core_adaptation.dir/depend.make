# Empty dependencies file for test_core_adaptation.
# This may be replaced when dependencies are built.
