file(REMOVE_RECURSE
  "CMakeFiles/test_core_adaptation.dir/test_core_adaptation.cpp.o"
  "CMakeFiles/test_core_adaptation.dir/test_core_adaptation.cpp.o.d"
  "test_core_adaptation"
  "test_core_adaptation.pdb"
  "test_core_adaptation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
