file(REMOVE_RECURSE
  "CMakeFiles/test_autodiff_fuzz.dir/test_autodiff_fuzz.cpp.o"
  "CMakeFiles/test_autodiff_fuzz.dir/test_autodiff_fuzz.cpp.o.d"
  "test_autodiff_fuzz"
  "test_autodiff_fuzz.pdb"
  "test_autodiff_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autodiff_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
