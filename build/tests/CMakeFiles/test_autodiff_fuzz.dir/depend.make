# Empty dependencies file for test_autodiff_fuzz.
# This may be replaced when dependencies are built.
