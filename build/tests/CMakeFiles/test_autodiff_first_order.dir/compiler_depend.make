# Empty compiler generated dependencies file for test_autodiff_first_order.
# This may be replaced when dependencies are built.
