file(REMOVE_RECURSE
  "CMakeFiles/test_autodiff_conv.dir/test_autodiff_conv.cpp.o"
  "CMakeFiles/test_autodiff_conv.dir/test_autodiff_conv.cpp.o.d"
  "test_autodiff_conv"
  "test_autodiff_conv.pdb"
  "test_autodiff_conv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autodiff_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
