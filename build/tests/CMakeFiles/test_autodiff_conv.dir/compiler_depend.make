# Empty compiler generated dependencies file for test_autodiff_conv.
# This may be replaced when dependencies are built.
