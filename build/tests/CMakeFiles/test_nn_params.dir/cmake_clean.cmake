file(REMOVE_RECURSE
  "CMakeFiles/test_nn_params.dir/test_nn_params.cpp.o"
  "CMakeFiles/test_nn_params.dir/test_nn_params.cpp.o.d"
  "test_nn_params"
  "test_nn_params.pdb"
  "test_nn_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
