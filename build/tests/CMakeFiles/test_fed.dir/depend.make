# Empty dependencies file for test_fed.
# This may be replaced when dependencies are built.
