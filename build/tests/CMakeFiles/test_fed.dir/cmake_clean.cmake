file(REMOVE_RECURSE
  "CMakeFiles/test_fed.dir/test_fed.cpp.o"
  "CMakeFiles/test_fed.dir/test_fed.cpp.o.d"
  "test_fed"
  "test_fed.pdb"
  "test_fed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
