file(REMOVE_RECURSE
  "CMakeFiles/test_core_algorithms.dir/test_core_algorithms.cpp.o"
  "CMakeFiles/test_core_algorithms.dir/test_core_algorithms.cpp.o.d"
  "test_core_algorithms"
  "test_core_algorithms.pdb"
  "test_core_algorithms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
