# Empty compiler generated dependencies file for test_core_algorithms.
# This may be replaced when dependencies are built.
