# Empty compiler generated dependencies file for test_fed_compression.
# This may be replaced when dependencies are built.
