file(REMOVE_RECURSE
  "CMakeFiles/test_fed_compression.dir/test_fed_compression.cpp.o"
  "CMakeFiles/test_fed_compression.dir/test_fed_compression.cpp.o.d"
  "test_fed_compression"
  "test_fed_compression.pdb"
  "test_fed_compression[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fed_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
