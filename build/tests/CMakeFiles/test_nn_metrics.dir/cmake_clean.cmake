file(REMOVE_RECURSE
  "CMakeFiles/test_nn_metrics.dir/test_nn_metrics.cpp.o"
  "CMakeFiles/test_nn_metrics.dir/test_nn_metrics.cpp.o.d"
  "test_nn_metrics"
  "test_nn_metrics.pdb"
  "test_nn_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
