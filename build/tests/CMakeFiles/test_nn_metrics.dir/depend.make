# Empty dependencies file for test_nn_metrics.
# This may be replaced when dependencies are built.
