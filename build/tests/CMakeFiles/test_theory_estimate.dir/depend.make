# Empty dependencies file for test_theory_estimate.
# This may be replaced when dependencies are built.
