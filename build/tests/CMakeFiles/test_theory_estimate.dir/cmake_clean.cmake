file(REMOVE_RECURSE
  "CMakeFiles/test_theory_estimate.dir/test_theory_estimate.cpp.o"
  "CMakeFiles/test_theory_estimate.dir/test_theory_estimate.cpp.o.d"
  "test_theory_estimate"
  "test_theory_estimate.pdb"
  "test_theory_estimate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_theory_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
