file(REMOVE_RECURSE
  "CMakeFiles/test_core_meta.dir/test_core_meta.cpp.o"
  "CMakeFiles/test_core_meta.dir/test_core_meta.cpp.o.d"
  "test_core_meta"
  "test_core_meta.pdb"
  "test_core_meta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
