# Empty compiler generated dependencies file for test_core_meta.
# This may be replaced when dependencies are built.
