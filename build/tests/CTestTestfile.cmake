# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util_rng[1]_include.cmake")
include("/root/repo/build/tests/test_util_misc[1]_include.cmake")
include("/root/repo/build/tests/test_util_log[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_tensor_property[1]_include.cmake")
include("/root/repo/build/tests/test_autodiff_first_order[1]_include.cmake")
include("/root/repo/build/tests/test_autodiff_second_order[1]_include.cmake")
include("/root/repo/build/tests/test_autodiff_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_autodiff_conv[1]_include.cmake")
include("/root/repo/build/tests/test_nn_module[1]_include.cmake")
include("/root/repo/build/tests/test_nn_loss[1]_include.cmake")
include("/root/repo/build/tests/test_nn_params[1]_include.cmake")
include("/root/repo/build/tests/test_nn_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_nn_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_nn_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_data_io[1]_include.cmake")
include("/root/repo/build/tests/test_fed[1]_include.cmake")
include("/root/repo/build/tests/test_fed_compression[1]_include.cmake")
include("/root/repo/build/tests/test_core_meta[1]_include.cmake")
include("/root/repo/build/tests/test_core_algorithms[1]_include.cmake")
include("/root/repo/build/tests/test_core_adaptation[1]_include.cmake")
include("/root/repo/build/tests/test_core_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_core_personalization[1]_include.cmake")
include("/root/repo/build/tests/test_robust[1]_include.cmake")
include("/root/repo/build/tests/test_theory[1]_include.cmake")
include("/root/repo/build/tests/test_theory_estimate[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
