file(REMOVE_RECURSE
  "../bench/fig3e_adapt_sent140"
  "../bench/fig3e_adapt_sent140.pdb"
  "CMakeFiles/fig3e_adapt_sent140.dir/fig3e_adapt_sent140.cpp.o"
  "CMakeFiles/fig3e_adapt_sent140.dir/fig3e_adapt_sent140.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3e_adapt_sent140.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
