# Empty dependencies file for fig3e_adapt_sent140.
# This may be replaced when dependencies are built.
