# Empty dependencies file for fig2b_local_steps.
# This may be replaced when dependencies are built.
