file(REMOVE_RECURSE
  "../bench/fig2b_local_steps"
  "../bench/fig2b_local_steps.pdb"
  "CMakeFiles/fig2b_local_steps.dir/fig2b_local_steps.cpp.o"
  "CMakeFiles/fig2b_local_steps.dir/fig2b_local_steps.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_local_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
