# Empty compiler generated dependencies file for fig3b_target_similarity.
# This may be replaced when dependencies are built.
