file(REMOVE_RECURSE
  "../bench/fig3b_target_similarity"
  "../bench/fig3b_target_similarity.pdb"
  "CMakeFiles/fig3b_target_similarity.dir/fig3b_target_similarity.cpp.o"
  "CMakeFiles/fig3b_target_similarity.dir/fig3b_target_similarity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_target_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
