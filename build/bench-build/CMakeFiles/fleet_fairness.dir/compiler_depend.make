# Empty compiler generated dependencies file for fleet_fairness.
# This may be replaced when dependencies are built.
