file(REMOVE_RECURSE
  "../bench/fleet_fairness"
  "../bench/fleet_fairness.pdb"
  "CMakeFiles/fleet_fairness.dir/fleet_fairness.cpp.o"
  "CMakeFiles/fleet_fairness.dir/fleet_fairness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
