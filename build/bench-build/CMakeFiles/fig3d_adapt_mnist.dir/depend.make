# Empty dependencies file for fig3d_adapt_mnist.
# This may be replaced when dependencies are built.
