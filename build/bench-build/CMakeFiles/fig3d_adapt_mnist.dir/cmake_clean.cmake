file(REMOVE_RECURSE
  "../bench/fig3d_adapt_mnist"
  "../bench/fig3d_adapt_mnist.pdb"
  "CMakeFiles/fig3d_adapt_mnist.dir/fig3d_adapt_mnist.cpp.o"
  "CMakeFiles/fig3d_adapt_mnist.dir/fig3d_adapt_mnist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3d_adapt_mnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
