file(REMOVE_RECURSE
  "../bench/fig3a_sent140_convergence"
  "../bench/fig3a_sent140_convergence.pdb"
  "CMakeFiles/fig3a_sent140_convergence.dir/fig3a_sent140_convergence.cpp.o"
  "CMakeFiles/fig3a_sent140_convergence.dir/fig3a_sent140_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_sent140_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
