# Empty dependencies file for fig3a_sent140_convergence.
# This may be replaced when dependencies are built.
