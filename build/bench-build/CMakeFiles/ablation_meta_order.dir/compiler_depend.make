# Empty compiler generated dependencies file for ablation_meta_order.
# This may be replaced when dependencies are built.
