file(REMOVE_RECURSE
  "../bench/ablation_meta_order"
  "../bench/ablation_meta_order.pdb"
  "CMakeFiles/ablation_meta_order.dir/ablation_meta_order.cpp.o"
  "CMakeFiles/ablation_meta_order.dir/ablation_meta_order.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_meta_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
