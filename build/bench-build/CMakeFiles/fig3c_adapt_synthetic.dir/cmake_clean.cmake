file(REMOVE_RECURSE
  "../bench/fig3c_adapt_synthetic"
  "../bench/fig3c_adapt_synthetic.pdb"
  "CMakeFiles/fig3c_adapt_synthetic.dir/fig3c_adapt_synthetic.cpp.o"
  "CMakeFiles/fig3c_adapt_synthetic.dir/fig3c_adapt_synthetic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_adapt_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
