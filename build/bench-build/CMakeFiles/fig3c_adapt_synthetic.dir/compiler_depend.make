# Empty compiler generated dependencies file for fig3c_adapt_synthetic.
# This may be replaced when dependencies are built.
