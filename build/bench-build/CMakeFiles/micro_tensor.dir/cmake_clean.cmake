file(REMOVE_RECURSE
  "../bench/micro_tensor"
  "../bench/micro_tensor.pdb"
  "CMakeFiles/micro_tensor.dir/micro_tensor.cpp.o"
  "CMakeFiles/micro_tensor.dir/micro_tensor.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
