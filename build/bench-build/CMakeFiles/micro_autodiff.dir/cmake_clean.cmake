file(REMOVE_RECURSE
  "../bench/micro_autodiff"
  "../bench/micro_autodiff.pdb"
  "CMakeFiles/micro_autodiff.dir/micro_autodiff.cpp.o"
  "CMakeFiles/micro_autodiff.dir/micro_autodiff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
