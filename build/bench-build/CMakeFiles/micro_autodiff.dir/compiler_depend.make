# Empty compiler generated dependencies file for micro_autodiff.
# This may be replaced when dependencies are built.
