file(REMOVE_RECURSE
  "../bench/extension_cnn"
  "../bench/extension_cnn.pdb"
  "CMakeFiles/extension_cnn.dir/extension_cnn.cpp.o"
  "CMakeFiles/extension_cnn.dir/extension_cnn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
