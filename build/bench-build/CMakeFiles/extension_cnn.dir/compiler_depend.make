# Empty compiler generated dependencies file for extension_cnn.
# This may be replaced when dependencies are built.
