file(REMOVE_RECURSE
  "../bench/fig4_robust_tradeoff"
  "../bench/fig4_robust_tradeoff.pdb"
  "CMakeFiles/fig4_robust_tradeoff.dir/fig4_robust_tradeoff.cpp.o"
  "CMakeFiles/fig4_robust_tradeoff.dir/fig4_robust_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_robust_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
