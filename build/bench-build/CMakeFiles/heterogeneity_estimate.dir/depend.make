# Empty dependencies file for heterogeneity_estimate.
# This may be replaced when dependencies are built.
