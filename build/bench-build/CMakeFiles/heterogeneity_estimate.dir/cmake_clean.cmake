file(REMOVE_RECURSE
  "../bench/heterogeneity_estimate"
  "../bench/heterogeneity_estimate.pdb"
  "CMakeFiles/heterogeneity_estimate.dir/heterogeneity_estimate.cpp.o"
  "CMakeFiles/heterogeneity_estimate.dir/heterogeneity_estimate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneity_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
