file(REMOVE_RECURSE
  "../bench/fig2a_node_similarity"
  "../bench/fig2a_node_similarity.pdb"
  "CMakeFiles/fig2a_node_similarity.dir/fig2a_node_similarity.cpp.o"
  "CMakeFiles/fig2a_node_similarity.dir/fig2a_node_similarity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_node_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
