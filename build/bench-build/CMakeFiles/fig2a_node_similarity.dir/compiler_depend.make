# Empty compiler generated dependencies file for fig2a_node_similarity.
# This may be replaced when dependencies are built.
