# Empty dependencies file for theory_bound_check.
# This may be replaced when dependencies are built.
