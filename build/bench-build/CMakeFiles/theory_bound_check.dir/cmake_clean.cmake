file(REMOVE_RECURSE
  "../bench/theory_bound_check"
  "../bench/theory_bound_check.pdb"
  "CMakeFiles/theory_bound_check.dir/theory_bound_check.cpp.o"
  "CMakeFiles/theory_bound_check.dir/theory_bound_check.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_bound_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
