# Empty dependencies file for ablation_comm_cost.
# This may be replaced when dependencies are built.
