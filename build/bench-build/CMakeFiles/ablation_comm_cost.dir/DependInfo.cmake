
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_comm_cost.cpp" "bench-build/CMakeFiles/ablation_comm_cost.dir/ablation_comm_cost.cpp.o" "gcc" "bench-build/CMakeFiles/ablation_comm_cost.dir/ablation_comm_cost.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/fedml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/theory/CMakeFiles/fedml_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/robust/CMakeFiles/fedml_robust.dir/DependInfo.cmake"
  "/root/repo/build/src/fed/CMakeFiles/fedml_fed.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedml_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedml_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/fedml_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedml_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
