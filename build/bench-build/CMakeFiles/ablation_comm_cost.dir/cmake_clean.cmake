file(REMOVE_RECURSE
  "../bench/ablation_comm_cost"
  "../bench/ablation_comm_cost.pdb"
  "CMakeFiles/ablation_comm_cost.dir/ablation_comm_cost.cpp.o"
  "CMakeFiles/ablation_comm_cost.dir/ablation_comm_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_comm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
