file(REMOVE_RECURSE
  "../bench/fig4e_fgsm_sweep"
  "../bench/fig4e_fgsm_sweep.pdb"
  "CMakeFiles/fig4e_fgsm_sweep.dir/fig4e_fgsm_sweep.cpp.o"
  "CMakeFiles/fig4e_fgsm_sweep.dir/fig4e_fgsm_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4e_fgsm_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
