# Empty compiler generated dependencies file for fig4e_fgsm_sweep.
# This may be replaced when dependencies are built.
