file(REMOVE_RECURSE
  "../bench/ablation_participation"
  "../bench/ablation_participation.pdb"
  "CMakeFiles/ablation_participation.dir/ablation_participation.cpp.o"
  "CMakeFiles/ablation_participation.dir/ablation_participation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_participation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
