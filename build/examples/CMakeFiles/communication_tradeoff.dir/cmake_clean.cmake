file(REMOVE_RECURSE
  "CMakeFiles/communication_tradeoff.dir/communication_tradeoff.cpp.o"
  "CMakeFiles/communication_tradeoff.dir/communication_tradeoff.cpp.o.d"
  "communication_tradeoff"
  "communication_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/communication_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
