# Empty compiler generated dependencies file for communication_tradeoff.
# This may be replaced when dependencies are built.
