# Empty dependencies file for edge_sensor_adaptation.
# This may be replaced when dependencies are built.
