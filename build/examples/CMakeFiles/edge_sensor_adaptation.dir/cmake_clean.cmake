file(REMOVE_RECURSE
  "CMakeFiles/edge_sensor_adaptation.dir/edge_sensor_adaptation.cpp.o"
  "CMakeFiles/edge_sensor_adaptation.dir/edge_sensor_adaptation.cpp.o.d"
  "edge_sensor_adaptation"
  "edge_sensor_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_sensor_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
