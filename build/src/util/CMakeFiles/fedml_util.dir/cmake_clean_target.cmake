file(REMOVE_RECURSE
  "libfedml_util.a"
)
