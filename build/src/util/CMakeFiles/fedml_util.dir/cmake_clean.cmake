file(REMOVE_RECURSE
  "CMakeFiles/fedml_util.dir/cli.cpp.o"
  "CMakeFiles/fedml_util.dir/cli.cpp.o.d"
  "CMakeFiles/fedml_util.dir/log.cpp.o"
  "CMakeFiles/fedml_util.dir/log.cpp.o.d"
  "CMakeFiles/fedml_util.dir/rng.cpp.o"
  "CMakeFiles/fedml_util.dir/rng.cpp.o.d"
  "CMakeFiles/fedml_util.dir/table.cpp.o"
  "CMakeFiles/fedml_util.dir/table.cpp.o.d"
  "CMakeFiles/fedml_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fedml_util.dir/thread_pool.cpp.o.d"
  "libfedml_util.a"
  "libfedml_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedml_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
