# Empty compiler generated dependencies file for fedml_util.
# This may be replaced when dependencies are built.
