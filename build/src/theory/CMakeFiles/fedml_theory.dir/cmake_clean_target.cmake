file(REMOVE_RECURSE
  "libfedml_theory.a"
)
