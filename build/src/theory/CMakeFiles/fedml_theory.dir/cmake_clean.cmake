file(REMOVE_RECURSE
  "CMakeFiles/fedml_theory.dir/bounds.cpp.o"
  "CMakeFiles/fedml_theory.dir/bounds.cpp.o.d"
  "CMakeFiles/fedml_theory.dir/estimate.cpp.o"
  "CMakeFiles/fedml_theory.dir/estimate.cpp.o.d"
  "CMakeFiles/fedml_theory.dir/quadratic.cpp.o"
  "CMakeFiles/fedml_theory.dir/quadratic.cpp.o.d"
  "libfedml_theory.a"
  "libfedml_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedml_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
