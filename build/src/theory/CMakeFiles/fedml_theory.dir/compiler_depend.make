# Empty compiler generated dependencies file for fedml_theory.
# This may be replaced when dependencies are built.
