file(REMOVE_RECURSE
  "CMakeFiles/fedml_robust.dir/adversary.cpp.o"
  "CMakeFiles/fedml_robust.dir/adversary.cpp.o.d"
  "libfedml_robust.a"
  "libfedml_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedml_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
