# Empty dependencies file for fedml_robust.
# This may be replaced when dependencies are built.
