file(REMOVE_RECURSE
  "libfedml_robust.a"
)
