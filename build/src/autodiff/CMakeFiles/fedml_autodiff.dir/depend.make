# Empty dependencies file for fedml_autodiff.
# This may be replaced when dependencies are built.
