
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autodiff/ops.cpp" "src/autodiff/CMakeFiles/fedml_autodiff.dir/ops.cpp.o" "gcc" "src/autodiff/CMakeFiles/fedml_autodiff.dir/ops.cpp.o.d"
  "/root/repo/src/autodiff/var.cpp" "src/autodiff/CMakeFiles/fedml_autodiff.dir/var.cpp.o" "gcc" "src/autodiff/CMakeFiles/fedml_autodiff.dir/var.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fedml_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
