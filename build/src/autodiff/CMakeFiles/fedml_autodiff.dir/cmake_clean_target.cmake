file(REMOVE_RECURSE
  "libfedml_autodiff.a"
)
