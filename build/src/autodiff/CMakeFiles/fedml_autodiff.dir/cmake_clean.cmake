file(REMOVE_RECURSE
  "CMakeFiles/fedml_autodiff.dir/ops.cpp.o"
  "CMakeFiles/fedml_autodiff.dir/ops.cpp.o.d"
  "CMakeFiles/fedml_autodiff.dir/var.cpp.o"
  "CMakeFiles/fedml_autodiff.dir/var.cpp.o.d"
  "libfedml_autodiff.a"
  "libfedml_autodiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedml_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
