# Empty compiler generated dependencies file for fedml_fed.
# This may be replaced when dependencies are built.
