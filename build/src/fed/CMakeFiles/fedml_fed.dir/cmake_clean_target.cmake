file(REMOVE_RECURSE
  "libfedml_fed.a"
)
