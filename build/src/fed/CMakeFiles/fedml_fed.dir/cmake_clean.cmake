file(REMOVE_RECURSE
  "CMakeFiles/fedml_fed.dir/compression.cpp.o"
  "CMakeFiles/fedml_fed.dir/compression.cpp.o.d"
  "CMakeFiles/fedml_fed.dir/node.cpp.o"
  "CMakeFiles/fedml_fed.dir/node.cpp.o.d"
  "CMakeFiles/fedml_fed.dir/platform.cpp.o"
  "CMakeFiles/fedml_fed.dir/platform.cpp.o.d"
  "CMakeFiles/fedml_fed.dir/secure_agg.cpp.o"
  "CMakeFiles/fedml_fed.dir/secure_agg.cpp.o.d"
  "libfedml_fed.a"
  "libfedml_fed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedml_fed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
