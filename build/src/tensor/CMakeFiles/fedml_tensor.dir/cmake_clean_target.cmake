file(REMOVE_RECURSE
  "libfedml_tensor.a"
)
