# Empty compiler generated dependencies file for fedml_tensor.
# This may be replaced when dependencies are built.
