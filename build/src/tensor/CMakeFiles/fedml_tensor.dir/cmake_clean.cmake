file(REMOVE_RECURSE
  "CMakeFiles/fedml_tensor.dir/tensor.cpp.o"
  "CMakeFiles/fedml_tensor.dir/tensor.cpp.o.d"
  "libfedml_tensor.a"
  "libfedml_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedml_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
