
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/fedml_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/fedml_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/fedml_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/fedml_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/fedml_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/fedml_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/metrics.cpp" "src/nn/CMakeFiles/fedml_nn.dir/metrics.cpp.o" "gcc" "src/nn/CMakeFiles/fedml_nn.dir/metrics.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/fedml_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/fedml_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/fedml_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/fedml_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/params.cpp" "src/nn/CMakeFiles/fedml_nn.dir/params.cpp.o" "gcc" "src/nn/CMakeFiles/fedml_nn.dir/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/autodiff/CMakeFiles/fedml_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedml_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
