file(REMOVE_RECURSE
  "libfedml_nn.a"
)
