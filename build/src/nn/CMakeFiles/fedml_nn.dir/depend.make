# Empty dependencies file for fedml_nn.
# This may be replaced when dependencies are built.
