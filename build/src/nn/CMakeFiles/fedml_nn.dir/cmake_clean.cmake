file(REMOVE_RECURSE
  "CMakeFiles/fedml_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/fedml_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/fedml_nn.dir/embedding.cpp.o"
  "CMakeFiles/fedml_nn.dir/embedding.cpp.o.d"
  "CMakeFiles/fedml_nn.dir/loss.cpp.o"
  "CMakeFiles/fedml_nn.dir/loss.cpp.o.d"
  "CMakeFiles/fedml_nn.dir/metrics.cpp.o"
  "CMakeFiles/fedml_nn.dir/metrics.cpp.o.d"
  "CMakeFiles/fedml_nn.dir/module.cpp.o"
  "CMakeFiles/fedml_nn.dir/module.cpp.o.d"
  "CMakeFiles/fedml_nn.dir/optimizer.cpp.o"
  "CMakeFiles/fedml_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/fedml_nn.dir/params.cpp.o"
  "CMakeFiles/fedml_nn.dir/params.cpp.o.d"
  "libfedml_nn.a"
  "libfedml_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedml_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
