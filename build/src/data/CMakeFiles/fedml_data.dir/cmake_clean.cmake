file(REMOVE_RECURSE
  "CMakeFiles/fedml_data.dir/dataset.cpp.o"
  "CMakeFiles/fedml_data.dir/dataset.cpp.o.d"
  "CMakeFiles/fedml_data.dir/io.cpp.o"
  "CMakeFiles/fedml_data.dir/io.cpp.o.d"
  "CMakeFiles/fedml_data.dir/mnist_like.cpp.o"
  "CMakeFiles/fedml_data.dir/mnist_like.cpp.o.d"
  "CMakeFiles/fedml_data.dir/sent140_like.cpp.o"
  "CMakeFiles/fedml_data.dir/sent140_like.cpp.o.d"
  "CMakeFiles/fedml_data.dir/synthetic.cpp.o"
  "CMakeFiles/fedml_data.dir/synthetic.cpp.o.d"
  "libfedml_data.a"
  "libfedml_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedml_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
