file(REMOVE_RECURSE
  "libfedml_data.a"
)
