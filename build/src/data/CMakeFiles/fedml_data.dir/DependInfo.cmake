
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/fedml_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/fedml_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/io.cpp" "src/data/CMakeFiles/fedml_data.dir/io.cpp.o" "gcc" "src/data/CMakeFiles/fedml_data.dir/io.cpp.o.d"
  "/root/repo/src/data/mnist_like.cpp" "src/data/CMakeFiles/fedml_data.dir/mnist_like.cpp.o" "gcc" "src/data/CMakeFiles/fedml_data.dir/mnist_like.cpp.o.d"
  "/root/repo/src/data/sent140_like.cpp" "src/data/CMakeFiles/fedml_data.dir/sent140_like.cpp.o" "gcc" "src/data/CMakeFiles/fedml_data.dir/sent140_like.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/data/CMakeFiles/fedml_data.dir/synthetic.cpp.o" "gcc" "src/data/CMakeFiles/fedml_data.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/fedml_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/autodiff/CMakeFiles/fedml_autodiff.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedml_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
