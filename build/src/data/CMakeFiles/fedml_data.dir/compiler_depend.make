# Empty compiler generated dependencies file for fedml_data.
# This may be replaced when dependencies are built.
