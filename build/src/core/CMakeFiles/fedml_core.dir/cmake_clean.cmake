file(REMOVE_RECURSE
  "CMakeFiles/fedml_core.dir/adaptation.cpp.o"
  "CMakeFiles/fedml_core.dir/adaptation.cpp.o.d"
  "CMakeFiles/fedml_core.dir/algorithms.cpp.o"
  "CMakeFiles/fedml_core.dir/algorithms.cpp.o.d"
  "CMakeFiles/fedml_core.dir/meta.cpp.o"
  "CMakeFiles/fedml_core.dir/meta.cpp.o.d"
  "CMakeFiles/fedml_core.dir/personalization.cpp.o"
  "CMakeFiles/fedml_core.dir/personalization.cpp.o.d"
  "libfedml_core.a"
  "libfedml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
