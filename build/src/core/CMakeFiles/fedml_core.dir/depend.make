# Empty dependencies file for fedml_core.
# This may be replaced when dependencies are built.
