file(REMOVE_RECURSE
  "libfedml_core.a"
)
