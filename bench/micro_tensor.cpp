// Microbenchmarks for the tensor substrate (google-benchmark): the kernels
// that dominate training time at edge-model scales.

#include <benchmark/benchmark.h>

#include "micro_common.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace {

using fedml::tensor::Tensor;

Tensor random_tensor(std::size_t r, std::size_t c, std::uint64_t seed) {
  fedml::util::Rng rng(seed);
  return Tensor::randn(r, c, rng);
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor(n, n, 1);
  const Tensor b = random_tensor(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fedml::tensor::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(16)->Arg(64)->Arg(128);

void BM_MatmulBatchByParams(benchmark::State& state) {
  // The shape that actually occurs in training: K-shot batch × features
  // times features × classes (e.g. 20×196 · 196×10).
  const Tensor x = random_tensor(20, 196, 1);
  const Tensor w = random_tensor(196, 10, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fedml::tensor::matmul(x, w));
  }
}
BENCHMARK(BM_MatmulBatchByParams);

void BM_Transpose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor(n, n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fedml::tensor::transpose(a));
  }
}
BENCHMARK(BM_Transpose)->Arg(64)->Arg(256);

void BM_Hadamard(benchmark::State& state) {
  const Tensor a = random_tensor(256, 256, 4);
  const Tensor b = random_tensor(256, 256, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fedml::tensor::hadamard(a, b));
  }
}
BENCHMARK(BM_Hadamard);

void BM_RowSums(benchmark::State& state) {
  const Tensor a = random_tensor(256, 256, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fedml::tensor::row_sums(a));
  }
}
BENCHMARK(BM_RowSums);

void BM_ArgmaxRows(benchmark::State& state) {
  const Tensor a = random_tensor(1024, 10, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fedml::tensor::argmax_rows(a));
  }
}
BENCHMARK(BM_ArgmaxRows);

}  // namespace

int main(int argc, char** argv) {
  return fedml::bench::micro_main(argc, argv, "micro_tensor");
}
