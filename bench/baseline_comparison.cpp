// Full baseline comparison on one federation: FedML (2nd order), FOMAML,
// Reptile, FedAvg, FedProx — meta objective, plain objective, target
// adaptation, and communication bill, side by side. The one-table summary a
// practitioner would want before picking an algorithm for a deployment.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 60));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 200));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  // The Sent140-like task is where the algorithms genuinely separate
  // (conflicting per-node label functions; see EXPERIMENTS.md).
  auto e = bench::sent140_experiment(nodes, {32, 16}, k, seed);
  const double alpha = 0.05;

  struct Row {
    std::string name;
    core::TrainResult result;
  };
  std::vector<Row> rows;

  {
    core::FedMLConfig cfg;
    cfg.alpha = alpha;
    cfg.beta = 0.3;
    cfg.total_iterations = total;
    cfg.local_steps = 5;
    cfg.threads = threads;
    cfg.track_loss = false;
    rows.push_back({"FedML", core::train_fedml(*e.model, e.sources, e.theta0, cfg)});
    cfg.order = core::MetaOrder::kFirstOrder;
    rows.push_back(
        {"FOMAML", core::train_fedml(*e.model, e.sources, e.theta0, cfg)});
  }
  {
    core::ReptileConfig cfg;
    cfg.alpha = alpha;
    cfg.beta_rep = 0.3;
    cfg.inner_steps = 3;
    cfg.total_iterations = total;
    cfg.local_steps = 5;
    cfg.threads = threads;
    cfg.track_loss = false;
    rows.push_back(
        {"Reptile", core::train_reptile(*e.model, e.sources, e.theta0, cfg)});
  }
  {
    core::FedAvgConfig cfg;
    cfg.lr = 0.3;
    cfg.total_iterations = total;
    cfg.local_steps = 5;
    cfg.threads = threads;
    cfg.track_loss = false;
    rows.push_back(
        {"FedAvg", core::train_fedavg(*e.model, e.sources, e.theta0, cfg)});
  }
  {
    core::FedProxConfig cfg;
    cfg.lr = 0.3;
    cfg.mu_prox = 0.1;
    cfg.total_iterations = total;
    cfg.local_steps = 5;
    cfg.threads = threads;
    cfg.track_loss = false;
    rows.push_back(
        {"FedProx", core::train_fedprox(*e.model, e.sources, e.theta0, cfg)});
  }

  util::Table t({"algorithm", "meta objective G", "target acc (1 step)",
                 "target acc (5 steps)", "target loss (5 steps)", "uplink MB"});
  for (const auto& row : rows) {
    util::Rng er(seed + 9);
    const auto curve = core::evaluate_targets(*e.model, row.result.theta, e.fd,
                                              e.target_ids, k, alpha, 5, er);
    t.add_row({row.name,
               core::global_meta_loss(*e.model, row.result.theta, e.sources, alpha),
               curve.accuracy[1], curve.accuracy[5], curve.loss[5],
               row.result.comm.bytes_up / 1e6});
  }
  bench::emit(t, "Baseline comparison on Sent140-like (K=5 targets)", csv);
  return 0;
}
