// Theory meets data: estimate the paper's Assumption-4 constants (δ, σ) —
// plus B, H, μ, ρ — directly from each generated federation using sampled
// gradients and exact Hessian-vector products. The estimated heterogeneity
// should rank the Synthetic(ᾱ,β̄) federations the same way Figure 2(a)'s
// convergence curves do, tying the empirical figures back to Theorem 2.

#include <iostream>

#include "bench_common.h"
#include "theory/estimate.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 12));
  const auto samples = static_cast<std::size_t>(cli.get_int("samples", 4));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  util::Table t({"federation", "delta (avg)", "sigma (avg)", "B", "H",
                 "mu (sampled)", "rho"});
  const double params[][2] = {{0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}};
  for (const auto& ab : params) {
    data::SyntheticConfig cfg;
    cfg.alpha = ab[0];
    cfg.beta = ab[1];
    cfg.num_nodes = nodes;
    cfg.seed = seed;
    auto fd = data::make_synthetic(cfg);
    data::standardize_features(fd);  // compare heterogeneity, not scale
    const auto model = nn::make_softmax_regression(fd.input_dim, fd.num_classes);
    util::Rng init(seed + 1);
    const auto theta0 = model->init_params(init);

    std::vector<double> weights;
    double total = 0.0;
    for (const auto& n : fd.nodes) total += static_cast<double>(n.size());
    for (const auto& n : fd.nodes)
      weights.push_back(static_cast<double>(n.size()) / total);

    theory::EstimateConfig ecfg;
    ecfg.parameter_samples = samples;
    ecfg.pair_samples = samples;
    ecfg.seed = seed + 2;
    const auto c =
        theory::estimate_constants(*model, theta0, fd.nodes, weights, ecfg);

    t.add_row({fd.name, c.delta_bar(), c.sigma_bar(), c.grad_bound, c.smooth_h,
               c.mu, c.rho});
  }
  bench::emit(t, "Assumption-4 heterogeneity constants, estimated from data "
                 "(exact HVPs, sampled theta)",
              csv);
  std::cout << "reading: delta/sigma should grow with (alpha,beta) — the same "
               "ordering Theorem 2 predicts for Figure 2(a)'s convergence "
               "errors.\n";
  return 0;
}
