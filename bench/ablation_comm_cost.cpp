// Ablation: the communication/computation trade-off that motivates multiple
// local updates (Section III-B / Theorem 2 discussion). Sweeps T0 at a fixed
// iteration budget and reports rounds, uplink bytes, simulated wall-clock
// under the edge communication model, and the achieved meta-objective — the
// knob the platform would tune in deployment.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 50));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 300));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const double uplink = cli.get_double("uplink-mbps", 2.0);
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  auto e = bench::synthetic_experiment(0.5, 0.5, nodes, k, seed);

  util::Table t({"T0", "rounds", "uplink MB", "sim seconds", "final G",
                 "G per sim-second"});
  for (const std::size_t t0 : {1, 2, 5, 10, 20, 50}) {
    core::FedMLConfig cfg;
    cfg.alpha = 0.01;
    cfg.beta = 0.01;
    cfg.total_iterations = total;
    cfg.local_steps = t0;
    cfg.threads = threads;
    cfg.comm.uplink_mbps = uplink;  // slow edge uplink stresses the trade-off
    const auto r = core::train_fedml(*e.model, e.sources, e.theta0, cfg);
    const double g = r.history.back().global_loss;
    t.add_row({static_cast<std::int64_t>(t0),
               static_cast<std::int64_t>(r.comm.aggregations),
               r.comm.bytes_up / 1e6, r.comm.sim_seconds, g,
               g / r.comm.sim_seconds});
  }
  bench::emit(t,
              "Ablation — communication cost vs local steps T0 "
              "(Synthetic(0.5,0.5), fixed T)",
              csv);
  std::cout << "reading: small T0 converges lower but pays more rounds/bytes; "
               "large T0 saves uplink at an accuracy cost (Theorem 2).\n";
  return 0;
}
