// Figure 2(a): impact of node similarity on FedML convergence.
// FedML on Synthetic(0,0), Synthetic(0.5,0.5), Synthetic(1,1) with T0 = 10.
// We report the convergence ERROR G(θ^t) − G(θ̂*), where the per-dataset
// reference optimum θ̂* comes from a long T0 = 1 run (Corollary 1 says that
// run converges without the multi-step error floor). Subtracting the
// reference makes the three federations comparable: they have different
// achievable losses, but the paper's claim is about the residual error.
// Paper shape: more heterogeneity (larger ᾱ, β̄) → larger convergence error.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 50));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 300));
  const auto t0 = static_cast<std::size_t>(cli.get_int("local-steps", 10));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  const double params[][2] = {{0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}};
  std::vector<core::TrainResult> results;
  std::vector<double> reference;
  std::vector<std::string> names;

  for (const auto& ab : params) {
    data::SyntheticConfig scfg;
    scfg.alpha = ab[0];
    scfg.beta = ab[1];
    scfg.num_nodes = nodes;
    scfg.seed = seed;
    auto fd = data::make_synthetic(scfg);
    // Standardize features globally so the three federations differ only in
    // heterogeneity, not in feature scale (β̄ inflates magnitudes otherwise).
    data::standardize_features(fd);
    auto model = nn::make_softmax_regression(fd.input_dim, fd.num_classes);
    auto e = bench::make_experiment(std::move(fd), std::move(model), k, seed + 1);
    names.push_back(e.fd.name);

    core::FedMLConfig cfg;
    cfg.alpha = 0.01;  // paper: α = β = 0.01 for synthetic data
    cfg.beta = 0.01;
    cfg.total_iterations = total;
    cfg.local_steps = t0;
    cfg.threads = threads;
    results.push_back(core::train_fedml(*e.model, e.sources, e.theta0, cfg));

    // Reference optimum: T0 = 1 for 4× the budget.
    core::FedMLConfig ref = cfg;
    ref.local_steps = 1;
    ref.total_iterations = 4 * total;
    ref.track_loss = false;
    const auto star = core::train_fedml(*e.model, e.sources, e.theta0, ref);
    reference.push_back(
        core::global_meta_loss(*e.model, star.theta, e.sources, cfg.alpha));
  }

  util::Table t({"iteration", names[0] + " err", names[1] + " err",
                 names[2] + " err"});
  for (std::size_t r = 0; r < results[0].history.size(); ++r) {
    t.add_row({static_cast<std::int64_t>(results[0].history[r].iteration),
               results[0].history[r].global_loss - reference[0],
               results[1].history[r].global_loss - reference[1],
               results[2].history[r].global_loss - reference[2]});
  }
  bench::emit(t, "Figure 2(a) — convergence error G(theta^t) - G* (T0=10)", csv);

  std::cout << "paper-shape check: final error should increase with "
               "heterogeneity -> "
            << results[0].history.back().global_loss - reference[0] << " <= "
            << results[1].history.back().global_loss - reference[1] << " <= "
            << results[2].history.back().global_loss - reference[2] << "\n";
  return 0;
}
