// Async-extension figure: straggler rate × aggregation deadline on the
// event-driven platform (sim::AsyncPlatform). Synchronous FedML waits for
// the slowest participant every round, so stragglers stretch wall-clock
// linearly; the async platform keeps aggregating on a deadline with
// staleness-discounted merges. We sweep the straggler fraction against the
// deadline and report simulated seconds to a target meta-loss.

#include <cmath>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 20));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 150));
  const auto t0 = static_cast<std::size_t>(cli.get_int("t0", 10));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const double slowdown = cli.get_double("slowdown", 4.0);
  const double target_slack = cli.get_double("target_slack", 1.5);
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  auto e = bench::synthetic_experiment(0.5, 0.5, nodes, k, seed);

  core::FedMLConfig base;
  base.alpha = 0.01;
  base.beta = 0.01;
  base.total_iterations = total;
  base.local_steps = t0;

  // Straggler-free synchronous reference sets the accuracy target.
  const auto sync = core::train_fedml(*e.model, e.sources, e.theta0, base);
  const double target = sync.history.back().global_loss * target_slack;

  const double stragglers[] = {0.0, 0.2, 0.5};
  const double deadlines[] = {0.05, 0.15, 0.5};

  // Loss trajectories are recorded per aggregation; map the first round at
  // or below the target to its simulated timestamp (-1 = never reached).
  const auto seconds_to_target =
      [&](const std::vector<core::RoundRecord>& history,
          const std::vector<double>& times) {
        for (std::size_t i = 0; i < history.size(); ++i)
          if (history[i].global_loss <= target && i < times.size())
            return times[i];
        return -1.0;
      };

  util::Table t({"straggler frac", "deadline s", "final loss", "rounds",
                 "s to target", "sim seconds", "mean staleness",
                 "stale updates"});
  for (const auto frac : stragglers) {
    for (const auto dl : deadlines) {
      core::AsyncFedMLConfig cfg;
      cfg.base = base;
      cfg.sim.total_iterations = total;
      cfg.sim.local_steps = t0;
      cfg.sim.deadline_s = dl;
      cfg.sim.staleness_exponent = 0.5;
      cfg.sim.faults.straggler_fraction = frac;
      cfg.sim.faults.straggler_slowdown = slowdown;
      cfg.sim.seed = seed;
      const auto r =
          core::train_fedml_async(*e.model, e.sources, e.theta0, cfg);

      t.add_row({frac, dl, r.history.back().global_loss,
                 static_cast<std::int64_t>(r.totals.comm.aggregations),
                 seconds_to_target(r.history, r.totals.round_times),
                 r.totals.comm.sim_seconds, r.totals.mean_staleness(),
                 static_cast<std::int64_t>(r.totals.stale_updates)});
    }
  }
  bench::emit(t,
              "Async staleness sweep — straggler fraction × deadline "
              "(s-to-target: simulated seconds until meta-loss <= sync-final "
              "× slack; -1 = never)",
              csv);

  // Synchronous rows at matching straggler fractions: the lockstep round
  // waits for its slowest participant, so every injected straggler scales
  // the whole run's wall-clock by the slowdown.
  util::Table s({"straggler frac", "final loss", "rounds", "s to target",
                 "sim seconds"});
  for (const auto frac : stragglers) {
    auto sources = e.sources;
    const auto count = static_cast<std::size_t>(
        std::llround(frac * static_cast<double>(sources.size())));
    for (std::size_t i = 0; i < count; ++i)
      sources[i].compute_speed *= slowdown;
    const auto r = core::train_fedml(*e.model, sources, e.theta0, base);
    // Synchronous rounds are uniform in time: round i of n ends at
    // (i+1)/n of the run.
    double st = -1.0;
    for (std::size_t i = 0; i < r.history.size(); ++i) {
      if (r.history[i].global_loss <= target) {
        st = r.comm.sim_seconds * static_cast<double>(i + 1) /
             static_cast<double>(r.history.size());
        break;
      }
    }
    s.add_row({frac, r.history.back().global_loss,
               static_cast<std::int64_t>(r.comm.aggregations), st,
               r.comm.sim_seconds});
  }
  bench::emit(s, "Synchronous reference (lockstep waits for stragglers)", "");
  return 0;
}
