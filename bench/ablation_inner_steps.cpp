// Ablation: depth of the inner adaptation loop during meta-training. The
// paper trains with ONE inner step (eq. (3)); the engine differentiates
// exactly through any depth, so we can ask whether deeper inner loops learn
// initializations that adapt better — and what they cost.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 50));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 200));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const double alpha = cli.get_double("alpha", 0.05);
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  auto e = bench::synthetic_experiment(0.5, 0.5, nodes, k, seed);

  util::Table t({"inner steps", "meta objective G", "target acc (1 step)",
                 "target acc (3 steps)", "target loss (3 steps)", "wall s"});
  for (const std::size_t inner : {1, 2, 3}) {
    core::FedMLConfig cfg;
    cfg.alpha = alpha;
    cfg.beta = 0.02;
    cfg.inner_steps = inner;
    cfg.total_iterations = total;
    cfg.local_steps = 5;
    cfg.threads = threads;
    cfg.track_loss = false;
    util::Stopwatch sw;
    const auto r = core::train_fedml(*e.model, e.sources, e.theta0, cfg);
    const double wall = sw.seconds();
    util::Rng er(seed + 5);
    const auto curve = core::evaluate_targets(*e.model, r.theta, e.fd,
                                              e.target_ids, k, alpha, 3, er);
    t.add_row({static_cast<std::int64_t>(inner),
               core::global_meta_loss(*e.model, r.theta, e.sources, alpha),
               curve.accuracy[1], curve.accuracy[3], curve.loss[3], wall});
  }
  bench::emit(t, "Ablation — inner-loop depth during meta-training "
                 "(Synthetic(0.5,0.5))",
              csv);
  return 0;
}
