// Federated-recommendation serving benchmark — the end-to-end headline for
// src/rec/: train the meta-initialization over a user federation
// (Algorithm 1, each user = one task), publish it, then drive Zipfian
// per-user traffic through the sharded serving runtime.
//
// Phases:
//   train      — core::train_fedml over `train_users` users, then the
//                personalization gain (adapted vs global accuracy) on
//                held-out users: the reason to meta-learn at all.
//   coverage   — closed loop over EVERY user id exactly once (default 1M
//                distinct users end-to-end): cold-miss throughput and
//                eviction churn at full scale.
//   zipf sweep — closed-loop Zipfian traffic, one-factor-at-a-time over
//                cache shards × capacity × traffic Zipf exponent:
//                hit rate, QPS, p50/p95/p99.
//   cache      — raw AdaptedCache hammer at fixed thread count, 1 shard vs
//                the configured shard count: the lock-scaling headline
//                (sharded/unsharded QPS ratio).
//   open loop  — paced submission at multiples of measured capacity against
//                the bounded queue + deadline: shed rate.
//
// All dataset/model/serving knobs come from the central rec::Config
// (--users=, --cache_shards=, --traffic_zipf=, ...); every CSV starts with
// a `# key=value` dump of that config, and the headline numbers land in
// BENCH_rec_serving.json. `--smoke` shrinks every phase for CI (and
// overrides any conflicting size options).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "nn/params.h"
#include "rec/config.h"
#include "rec/workload.h"
#include "serve/cache.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace {

using namespace fedml;

struct RunResult {
  double seconds = 0.0;
  serve::ServerStats stats;
  serve::AdaptedCache::Stats cache;
};

std::size_t effective_threads(std::size_t configured) {
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<std::size_t>(hw);
}

/// Closed loop: `clients` threads, each submit-and-wait; user ids come from
/// `next_uid(thread_index, rng)` so the same driver serves the sequential
/// coverage pass and the Zipfian steady-state cells.
template <typename NextUid>
RunResult closed_loop(serve::AdaptationServer& server, const rec::Config& cfg,
                      const data::RecSys& rec, std::size_t requests,
                      std::size_t clients, NextUid next_uid) {
  std::atomic<std::size_t> issued{0};
  util::Stopwatch clock;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      util::Rng rng(cfg.seed ^ (0xc11e'47000ull + c));
      for (;;) {
        if (issued.fetch_add(1) >= requests) return;
        const std::uint64_t uid = next_uid(c, rng);
        server.submit(rec::make_user_request(cfg, rec, uid)).get();
      }
    });
  }
  for (auto& w : workers) w.join();
  server.drain();
  return {clock.seconds(), server.stats(), server.cache_stats()};
}

/// Open loop: one submitter paced at `rate` requests/s with a per-request
/// deadline; responses are not waited on inline.
RunResult open_loop(serve::AdaptationServer& server, const rec::Config& cfg,
                    const data::RecSys& rec, std::size_t requests, double rate,
                    double deadline_s) {
  using clock = std::chrono::steady_clock;
  const auto interval = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(1.0 / rate));
  util::Rng rng(cfg.seed ^ 0x09e7'100bull);
  const util::ZipfSampler uid_sampler(cfg.users, cfg.traffic_zipf);
  std::vector<std::future<serve::AdaptResponse>> futures;
  futures.reserve(requests);
  util::Stopwatch wall;
  auto due = clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(due);
    auto req = rec::make_user_request(
        cfg, rec, static_cast<std::uint64_t>(uid_sampler.sample(rng)));
    req.deadline_s = deadline_s;
    futures.push_back(server.submit(std::move(req)));
    due += interval;
  }
  for (auto& f : futures) f.get();
  server.drain();
  return {wall.seconds(), server.stats(), server.cache_stats()};
}

void add_row(util::Table& t, const std::string& phase, const rec::Config& cfg,
             std::size_t threads, std::size_t requests, const RunResult& r) {
  t.add_row({phase, static_cast<std::int64_t>(cfg.cache_shards),
             static_cast<std::int64_t>(cfg.cache_capacity), cfg.traffic_zipf,
             static_cast<std::int64_t>(threads),
             static_cast<std::int64_t>(requests), r.seconds,
             static_cast<double>(r.stats.served) / r.seconds,
             r.stats.hit_rate(),
             static_cast<std::int64_t>(r.cache.evictions),
             r.stats.shed_rate(), r.stats.p50_ms, r.stats.p95_ms,
             r.stats.p99_ms});
}

/// One closed-loop Zipf cell with its own freshly built server.
RunResult zipf_cell(serve::ModelRegistry& registry, const rec::Config& cfg,
                    const data::RecSys& rec, std::size_t requests,
                    std::size_t clients) {
  serve::AdaptationServer server(registry, cfg.server());
  const util::ZipfSampler uid_sampler(cfg.users, cfg.traffic_zipf);
  return closed_loop(server, cfg, rec, requests, clients,
                     [&uid_sampler](std::size_t, util::Rng& rng) {
                       return static_cast<std::uint64_t>(
                           uid_sampler.sample(rng));
                     });
}

/// Raw AdaptedCache get/put hammer (no server, no adaptation): isolates the
/// shard-lock scaling that the end-to-end phases pay per request.
double hammer_cache(const rec::Config& cfg, std::size_t shards,
                    std::size_t threads, std::size_t ops_per_thread,
                    const nn::ParamList& phi) {
  serve::AdaptedCache::Config ccfg = cfg.cache();
  ccfg.shards = shards;
  serve::AdaptedCache cache(ccfg);
  util::Stopwatch clock;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Rng rng(cfg.seed ^ (0xca'43000ull + t));
      const util::ZipfSampler uid_sampler(cfg.users, cfg.traffic_zipf);
      for (std::size_t i = 0; i < ops_per_thread; ++i) {
        // Signature = raw user id: the worst-case (sequential) input the
        // audited mix_key finalizer must spread across shards and buckets.
        const serve::AdaptedCache::Key key{
            1, static_cast<std::uint64_t>(uid_sampler.sample(rng))};
        if (!cache.get(key)) cache.put(key, phi);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double seconds = clock.seconds();
  return static_cast<double>(threads * ops_per_thread) / seconds;
}

/// CSV with the full config as a `# key=value` preamble, then the table.
void emit_with_config(const util::Table& t, const std::string& title,
                      const std::string& csv_path, const rec::Config& cfg) {
  t.print(std::cout, title);
  if (!csv_path.empty()) {
    std::ofstream os(csv_path);
    FEDML_CHECK(os.good(), "cannot open csv path " + csv_path);
    cfg.dump(os);
    t.write_csv(os);
    FEDML_CHECK(os.good(), "csv write failed for " + csv_path);
    std::cout << "(csv written to " << csv_path << ")\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const auto csv = cli.get_string("csv", "");
  const auto json_dir = cli.get_string("json_dir", ".");
  auto cell_requests = static_cast<std::size_t>(
      cli.get_int("cell_requests", smoke ? 1500 : 150000));
  auto open_requests = static_cast<std::size_t>(
      cli.get_int("open_requests", smoke ? 1500 : 20000));
  auto hammer_ops = static_cast<std::size_t>(
      cli.get_int("hammer_ops", smoke ? 30000 : 400000));
  auto hammer_threads =
      static_cast<std::size_t>(cli.get_int("hammer_threads", 8));
  const double deadline_s = cli.get_double("deadline", 0.02);
  const auto eval_users =
      static_cast<std::size_t>(cli.get_int("eval_users", smoke ? 16 : 64));
  rec::Config cfg = rec::Config::from_cli(cli);
  cli.finish();

  if (smoke) {
    // CI-sized run: small id space, short training, tiny cache. Overrides
    // conflicting size options on purpose — smoke is the fixed CI shape.
    cfg.users = 3000;
    cfg.train_users = 24;
    cfg.iterations = 30;
    cfg.cache_capacity = 512;
    cfg.validate();
  }

  const data::RecSys rec(cfg.dataset());
  const auto model = rec::make_model(cfg);
  const std::size_t clients = 2 * effective_threads(cfg.serve_threads);

  // ---- train -------------------------------------------------------------
  util::Stopwatch train_clock;
  const core::TrainResult trained = rec::train_meta_init(cfg, rec, *model);
  const double train_s = train_clock.seconds();
  const rec::PersonalizationEval gain =
      rec::evaluate_personalization(cfg, rec, *model, trained.theta,
                                    eval_users);
  std::cout << "meta-init trained in " << train_s << " s; held-out users: "
            << "global acc " << gain.global_accuracy << ", adapted acc "
            << gain.adapted_accuracy << " (gain " << gain.gain() << ")\n\n";

  serve::ModelRegistry registry(model, cfg.registry_stripes);
  registry.publish(trained.theta);

  util::Table t({"phase", "shards", "capacity", "zipf", "threads", "requests",
                 "seconds", "qps", "hit rate", "evictions", "shed rate",
                 "p50 ms", "p95 ms", "p99 ms"});

  // ---- coverage: every user id exactly once ------------------------------
  RunResult coverage;
  {
    serve::AdaptationServer server(registry, cfg.server());
    std::atomic<std::uint64_t> uid_counter{0};
    coverage = closed_loop(server, cfg, rec, cfg.users, clients,
                           [&uid_counter](std::size_t, util::Rng&) {
                             return uid_counter.fetch_add(1);
                           });
    add_row(t, "coverage", cfg, effective_threads(cfg.serve_threads),
            cfg.users, coverage);
  }

  // ---- closed-loop Zipf sweep: shards × capacity × exponent (OFAT) -------
  const std::vector<std::size_t> shard_sweep =
      smoke ? std::vector<std::size_t>{1, cfg.cache_shards}
            : std::vector<std::size_t>{1, 4, cfg.cache_shards};
  const std::vector<std::size_t> capacity_sweep =
      smoke ? std::vector<std::size_t>{cfg.cache_capacity}
            : std::vector<std::size_t>{cfg.cache_capacity / 4,
                                       cfg.cache_capacity,
                                       cfg.cache_capacity * 4};
  const std::vector<double> zipf_sweep =
      smoke ? std::vector<double>{cfg.traffic_zipf}
            : std::vector<double>{0.7, cfg.traffic_zipf, 1.1};

  double base_qps = 0.0, one_shard_qps = 0.0;
  RunResult base_cell;
  const rec::Config base_cfg = cfg;
  const auto run_cell = [&](const rec::Config& cell_cfg) {
    cell_cfg.validate();
    const RunResult r =
        zipf_cell(registry, cell_cfg, rec, cell_requests, clients);
    add_row(t, "zipf_sweep", cell_cfg, effective_threads(cfg.serve_threads),
            cell_requests, r);
    return r;
  };
  for (const auto shards : shard_sweep) {
    rec::Config c = base_cfg;
    c.cache_shards = shards;
    const RunResult r = run_cell(c);
    if (shards == 1) one_shard_qps = static_cast<double>(r.stats.served) / r.seconds;
    if (shards == base_cfg.cache_shards) {
      base_qps = static_cast<double>(r.stats.served) / r.seconds;
      base_cell = r;
    }
  }
  for (const auto capacity : capacity_sweep) {
    if (capacity == base_cfg.cache_capacity) continue;  // base cell done
    rec::Config c = base_cfg;
    c.cache_capacity = capacity;
    run_cell(c);
  }
  for (const auto zipf : zipf_sweep) {
    if (zipf == base_cfg.traffic_zipf) continue;
    rec::Config c = base_cfg;
    c.traffic_zipf = zipf;
    run_cell(c);
  }

  // ---- raw cache hammer: the lock-scaling headline -----------------------
  const nn::ParamList phi = nn::clone_leaves(trained.theta, false);
  const double cache_qps_1 =
      hammer_cache(cfg, 1, hammer_threads, hammer_ops, phi);
  const double cache_qps_n =
      hammer_cache(cfg, cfg.cache_shards, hammer_threads, hammer_ops, phi);
  for (const auto& [shards, qps] :
       {std::pair{std::size_t{1}, cache_qps_1},
        std::pair{cfg.cache_shards, cache_qps_n}}) {
    t.add_row({std::string("cache_hammer"), static_cast<std::int64_t>(shards),
               static_cast<std::int64_t>(cfg.cache_capacity),
               cfg.traffic_zipf, static_cast<std::int64_t>(hammer_threads),
               static_cast<std::int64_t>(hammer_threads * hammer_ops),
               hammer_threads * hammer_ops / qps, qps, 0.0,
               std::int64_t{0}, 0.0, 0.0, 0.0, 0.0});
  }
  const double shard_speedup = cache_qps_n / cache_qps_1;
  std::cout << "cache hammer: " << cfg.cache_shards << " shards vs 1 shard at "
            << hammer_threads << " threads -> " << shard_speedup
            << "x closed-loop QPS (" << std::thread::hardware_concurrency()
            << " hardware threads; shard scaling needs real cores to show)\n\n";

  // ---- open loop: shed behaviour past capacity ---------------------------
  double max_shed = 0.0;
  for (const double mult : {0.5, 2.0, 8.0}) {
    serve::AdaptationServer server(registry, cfg.server());
    const double rate = mult * (base_qps > 0.0 ? base_qps : 1000.0);
    const RunResult r =
        open_loop(server, cfg, rec, open_requests, rate, deadline_s);
    add_row(t, "open_loop", cfg, effective_threads(cfg.serve_threads),
            open_requests, r);
    if (r.stats.shed_rate() > max_shed) max_shed = r.stats.shed_rate();
  }

  emit_with_config(t, "federated recommendation serving — " +
                          std::to_string(cfg.users) + " users",
                   csv, cfg);

  bench::write_bench_json(
      "rec_serving",
      {
          {"hardware_threads",
           static_cast<double>(std::thread::hardware_concurrency())},
          {"distinct_users", static_cast<double>(cfg.users)},
          {"train_seconds", train_s},
          {"global_accuracy", gain.global_accuracy},
          {"adapted_accuracy", gain.adapted_accuracy},
          {"personalization_gain", gain.gain()},
          {"coverage_qps",
           static_cast<double>(coverage.stats.served) / coverage.seconds},
          {"coverage_evictions",
           static_cast<double>(coverage.cache.evictions)},
          {"zipf_qps", base_qps},
          {"zipf_qps_1shard", one_shard_qps},
          {"zipf_hit_rate", base_cell.stats.hit_rate()},
          {"zipf_p99_ms", base_cell.stats.p99_ms},
          {"cache_qps_1shard", cache_qps_1},
          {"cache_qps_sharded", cache_qps_n},
          {"cache_shard_speedup", shard_speedup},
          {"open_loop_max_shed_rate", max_shed},
      },
      json_dir);
  return 0;
}
