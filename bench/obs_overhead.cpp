// Observability overhead micro-benchmark: what does the telemetry stack
// cost a training run?
//
// One fixed FedML workload (Synthetic(0.5,0.5), softmax regression) is
// trained repeatedly in three modes, interleaved so clock drift hits all
// modes equally:
//
//   off     — no obs::Telemetry attached; spans are inactive no-ops.
//   on      — telemetry attached, Chrome-trace + metrics-CSV exporters
//             written after every run.
//   uplink  — `on` plus the full fleet path: the run's ProcessTelemetry
//             snapshot is encoded as a kTelemetry frame, decoded, absorbed
//             into an obs::FleetCollector, and the merged fleet trace +
//             per-round CSV are written.
//
// Reports median wall time per mode and the percentage overhead of `on`
// and `uplink` over `off` — the budget the observability work must stay
// inside (≤ 2% median for `uplink`, checked by eye / trend tooling via
// BENCH_obs_overhead.json).
//
// `--smoke` shrinks reps and iterations for CI; `--csv=<path>` dumps the
// table; `--json-dir=<dir>` relocates the BENCH json artifact.

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "net/frame.h"
#include "obs/fleet.h"
#include "obs/histogram.h"
#include "obs/telemetry.h"
#include "util/serialize.h"

namespace {

using namespace fedml;

enum class Mode { kOff, kOn, kUplink };

double run_once(const bench::Experiment& e, std::size_t iterations,
                std::size_t local_steps, Mode mode,
                const std::string& out_prefix) {
  const auto t0 = std::chrono::steady_clock::now();
  obs::Telemetry telemetry;
  core::FedMLConfig cfg;
  cfg.alpha = 0.01;
  cfg.beta = 0.01;
  cfg.total_iterations = iterations;
  cfg.local_steps = local_steps;
  if (mode != Mode::kOff) cfg.telemetry = &telemetry;
  const auto result = core::train_fedml(*e.model, e.sources, e.theta0, cfg);
  FEDML_CHECK(std::isfinite(result.history.back().global_loss),
              "bench workload diverged");
  if (mode != Mode::kOff) {
    telemetry.write_chrome_trace_file(out_prefix + "_trace.json");
    telemetry.write_metrics_csv_file(out_prefix + "_metrics.csv");
  }
  if (mode == Mode::kUplink) {
    // The distributed push, minus the TCP hop: serialize the snapshot as a
    // kTelemetry frame, parse it back off the "wire", merge per-origin,
    // export the fleet view.
    obs::ProcessTelemetry snap;
    snap.pid = 1;
    snap.role = "bench";
    snap.spans = telemetry.tracer.snapshot();
    snap.metrics = telemetry.metrics.snapshot();
    util::ByteWriter w;
    net::encode_frame(net::encode_telemetry({std::move(snap)}), w);
    obs::FleetCollector collector;
    collector.absorb(
        net::decode_telemetry(net::decode_frame(w.bytes())).telemetry);
    const auto fleet = collector.snapshot();
    obs::write_fleet_chrome_trace_file(out_prefix + "_fleet.json", fleet);
    obs::write_fleet_csv_file(out_prefix + "_fleet.csv", fleet);
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 20));
  const auto iterations = static_cast<std::size_t>(
      cli.get_int("iterations", smoke ? 60 : 400));
  const auto reps =
      static_cast<std::size_t>(cli.get_int("reps", smoke ? 3 : 7));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string csv = cli.get_string("csv", "");
  const std::string json_dir = cli.get_string("json-dir", ".");
  cli.finish();

  const auto e = bench::synthetic_experiment(0.5, 0.5, nodes, 5, seed);
  const std::size_t local_steps = 10;

  // Warm-up (allocators, page cache for the exporter files), unmeasured.
  run_once(e, iterations, local_steps, Mode::kUplink, "obs_overhead_warm");

  std::vector<double> off_ms, on_ms, uplink_ms;
  for (std::size_t r = 0; r < reps; ++r) {
    off_ms.push_back(
        run_once(e, iterations, local_steps, Mode::kOff, "obs_overhead"));
    on_ms.push_back(
        run_once(e, iterations, local_steps, Mode::kOn, "obs_overhead"));
    uplink_ms.push_back(
        run_once(e, iterations, local_steps, Mode::kUplink, "obs_overhead"));
  }

  const double off = obs::exact_percentile(off_ms, 0.50);
  const double on = obs::exact_percentile(on_ms, 0.50);
  const double uplink = obs::exact_percentile(uplink_ms, 0.50);
  const double on_pct = (on / off - 1.0) * 100.0;
  const double uplink_pct = (uplink / off - 1.0) * 100.0;

  util::Table t({"mode", "median ms", "p95 ms", "overhead %"});
  t.add_row({"telemetry off", off, obs::exact_percentile(off_ms, 0.95), 0.0});
  t.add_row({"telemetry on", on, obs::exact_percentile(on_ms, 0.95), on_pct});
  t.add_row({"on + uplink", uplink, obs::exact_percentile(uplink_ms, 0.95),
             uplink_pct});
  bench::emit(t,
              "Observability overhead — FedML training wall time by "
              "telemetry mode (" +
                  std::to_string(reps) + " reps)",
              csv);

  bench::write_bench_json("obs_overhead",
                          {{"off_ms_median", off},
                           {"on_ms_median", on},
                           {"uplink_ms_median", uplink},
                           {"on_overhead_pct", on_pct},
                           {"uplink_overhead_pct", uplink_pct}},
                          json_dir);
  return 0;
}
