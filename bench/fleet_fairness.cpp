// Fleet fairness: federated deployments care about the distribution of
// per-node performance, not just the mean. Compares FedML and FedAvg on the
// worst node / 10th percentile / median / mean of post-adaptation accuracy
// across the held-out targets — does meta-learning lift the tail?

#include "bench_common.h"
#include "core/personalization.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 100));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 150));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto steps = static_cast<std::size_t>(cli.get_int("adapt-steps", 3));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  auto e = bench::sent140_experiment(nodes, {32, 16}, k, seed);
  const double alpha = 0.05;

  core::FedMLConfig mcfg;
  mcfg.alpha = alpha;
  mcfg.beta = 0.3;
  mcfg.total_iterations = total;
  mcfg.local_steps = 5;
  mcfg.threads = threads;
  mcfg.track_loss = false;
  const auto meta = core::train_fedml(*e.model, e.sources, e.theta0, mcfg);

  core::FedAvgConfig acfg;
  acfg.lr = 0.3;
  acfg.total_iterations = total;
  acfg.local_steps = 5;
  acfg.threads = threads;
  acfg.track_loss = false;
  const auto avg = core::train_fedavg(*e.model, e.sources, e.theta0, acfg);

  util::Table t({"variant", "worst node", "p10", "median", "mean", "targets"});
  t.set_precision(3);
  for (const auto& [name, theta] :
       {std::pair<std::string, const nn::ParamList*>{"FedML", &meta.theta},
        {"FedAvg", &avg.theta},
        {"no training (theta0)", &e.theta0}}) {
    util::Rng er(seed + 3);
    const auto fleet = core::evaluate_fleet(*e.model, *theta, e.fd,
                                            e.target_ids, k, alpha, steps, er);
    t.add_row({name, fleet.worst, fleet.p10, fleet.median, fleet.mean,
               static_cast<std::int64_t>(fleet.per_node_accuracy.size())});
  }
  bench::emit(t, "Fleet fairness — per-target-node accuracy distribution "
                 "(Sent140-like, " + std::to_string(steps) + " adapt steps)",
              csv);
  return 0;
}
