// Figure 3(e): fast adaptation performance on the Sent140-like task — a
// non-convex MLP over frozen embeddings, hundreds of account-nodes.
// Paper shape: FedML beats FedAvg at the targets and keeps improving with
// extra gradient steps without overfitting.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  bench::AdaptationComparisonConfig cfg;
  cfg.total_iterations =
      static_cast<std::size_t>(cli.get_int("iterations", 200));
  cfg.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cfg.adapt_steps = static_cast<std::size_t>(cli.get_int("adapt-steps", 5));
  // Paper uses α = 0.01, β = 0.3 on real Sent140; α is scaled to 0.05 for
  // our stand-in's gradient magnitudes (see EXPERIMENTS.md).
  cfg.alpha = cli.get_double("alpha", 0.05);
  cfg.beta = cli.get_double("beta", 0.3);
  cfg.ks = {5, 10, 20};
  // 150 nodes by default for CPU budget; pass --nodes=706 for Table-I scale.
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 150));
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  data::Sent140LikeConfig tcfg;
  tcfg.num_nodes = nodes;
  tcfg.seed = cfg.seed;
  const auto fd = data::make_sent140_like(tcfg);
  const auto model = nn::make_mlp(fd.input_dim, {64, 32, 16}, fd.num_classes);

  bench::run_adaptation_comparison(
      fd, model, cfg,
      "Figure 3(e) — adaptation on Sent140-like: FedML vs FedAvg", csv);
  return 0;
}
