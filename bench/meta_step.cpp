// Meta-gradient hot-path benchmark: the tracked perf baseline for src/kern/.
//
// Sweeps model size × batch × inner-steps and times the full second-order
// meta-gradient step (paper eq. (3)–(4), multi-step variant) under both
// dispatch modes:
//
//   compat — kern::Mode::kCompat, the process default: legacy summation
//            order and legacy autodiff graph shapes, bit-identical to the
//            pre-kern implementation.
//   fast   — kern::Mode::kFast: blocked/packed gemm, transposed-B autodiff
//            paths (A·Bᵀ without materializing Bᵀ), and fused elementwise
//            VJP chains.
//
// Both modes share the episode arena for tape nodes, so the compat column
// is *already* faster than the pre-kern code; the speedup column is the
// conservative (dispatch-only) win. Three micro sections isolate where the
// time goes: raw gemm, the fused sigmoid-VJP chain versus the three-pass
// temporary chain it replaces, and tape construction with the arena versus
// the heap.
//
// Output: a config-headed table (one row per swept config), optional CSV
// via --csv=<path>, and BENCH_meta_step.json for scripts/check_bench.py
// --compare. `hardware_threads` is recorded so the compare gate can tell
// "same machine, got slower" from "different machine". `--smoke` shrinks
// the sweep and rep count for CI.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "autodiff/ops.h"
#include "autodiff/var.h"
#include "bench_common.h"
#include "core/meta.h"
#include "kern/arena.h"
#include "kern/elementwise.h"
#include "kern/gemm.h"
#include "kern/kern.h"
#include "tensor/tensor.h"

namespace {

using namespace fedml;

/// One point of the sweep: model shape, batch size, inner-step count.
struct Config {
  std::string name;      ///< stable key used in table rows and JSON metrics
  std::size_t dim;       ///< input dimension (0 ⇒ MLP 196→64→10)
  std::size_t batch;     ///< rows in both the train and test split
  std::size_t inner;     ///< inner SGD steps differentiated through
};

struct Workload {
  std::shared_ptr<nn::Module> model;
  nn::ParamList theta0;
  data::Dataset train;
  data::Dataset test;
};

data::Dataset random_dataset(std::size_t n, std::size_t dim,
                             std::size_t classes, util::Rng& rng) {
  data::Dataset d;
  d.x = tensor::Tensor(n, dim, rng.normal_vector(n * dim));
  d.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) d.y[i] = i % classes;
  return d;
}

Workload make_workload(const Config& c, std::uint64_t seed) {
  constexpr std::size_t kClasses = 10;
  Workload w;
  if (c.dim == 0) {
    w.model = nn::make_mlp(196, {64}, kClasses);
  } else {
    w.model = nn::make_softmax_regression(c.dim, kClasses);
  }
  util::Rng init(seed);
  w.theta0 = w.model->init_params(init);
  const std::size_t dim = c.dim == 0 ? 196 : c.dim;
  util::Rng data_rng(seed ^ 0x5eed);
  w.train = random_dataset(c.batch, dim, kClasses, data_rng);
  w.test = random_dataset(c.batch, dim, kClasses, data_rng);
  return w;
}

/// Median wall time in ms of `fn`, self-calibrating the inner iteration
/// count so each rep runs ≥ `min_rep_ms` (keeps short configs above timer
/// noise without making the big ones crawl).
double time_median_ms(std::size_t reps, double min_rep_ms,
                      const std::function<void()>& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up: page in buffers, populate the episode arena pool
  auto once = [&] {
    const auto t0 = clock::now();
    fn();
    const auto t1 = clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
  };
  const double probe = once();
  const auto iters = static_cast<std::size_t>(
      std::max(1.0, min_rep_ms / std::max(probe, 1e-6)));
  std::vector<double> samples;
  samples.reserve(reps);
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const auto t1 = clock::now();
    samples.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count() /
        static_cast<double>(iters));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Times one config's full meta-gradient step in the given mode.
double meta_step_ms(const Workload& w, const Config& c, kern::Mode m,
                    std::size_t reps) {
  kern::ScopedMode scoped(m);
  const std::vector<const data::Dataset*> tests{&w.test};
  return time_median_ms(reps, 2.0, [&] {
    const auto g = core::meta_gradient_multistep(*w.model, w.theta0, w.train,
                                                 tests, 0.01, c.inner);
    FEDML_CHECK(!g.empty(), "meta_gradient returned nothing");
  });
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const auto reps =
      static_cast<std::size_t>(cli.get_int("reps", smoke ? 3 : 9));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string csv = cli.get_string("csv", "");
  const std::string json_dir = cli.get_string("json-dir", ".");
  cli.finish();

  // -- sweep: model size × batch × inner steps ------------------------------
  std::vector<Config> configs;
  const std::vector<std::size_t> dims =
      smoke ? std::vector<std::size_t>{60} : std::vector<std::size_t>{60, 196, 784};
  const std::vector<std::size_t> batches =
      smoke ? std::vector<std::size_t>{20} : std::vector<std::size_t>{20, 100};
  const std::vector<std::size_t> inners =
      smoke ? std::vector<std::size_t>{1} : std::vector<std::size_t>{1, 5};
  for (const auto d : dims)
    for (const auto b : batches)
      for (const auto s : inners)
        configs.push_back({"softmax_d" + std::to_string(d) + "_b" +
                               std::to_string(b) + "_s" + std::to_string(s),
                           d, b, s});
  if (!smoke) configs.push_back({"mlp196x64_b20_s1", 0, 20, 1});

  bench::BenchMetrics metrics;
  metrics.emplace_back(
      "hardware_threads",
      static_cast<double>(std::thread::hardware_concurrency()));

  // -- section 1: full second-order meta-gradient step ----------------------
  util::Table t({"config", "compat ms", "fast ms", "speedup"});
  double worst_speedup = 1e300;
  for (const auto& c : configs) {
    const auto w = make_workload(c, seed);
    const double compat = meta_step_ms(w, c, kern::Mode::kCompat, reps);
    const double fast = meta_step_ms(w, c, kern::Mode::kFast, reps);
    const double speedup = compat / fast;
    worst_speedup = std::min(worst_speedup, speedup);
    t.add_row({c.name, compat, fast, speedup});
    metrics.emplace_back("meta_" + c.name + "_compat_ms", compat);
    metrics.emplace_back("meta_" + c.name + "_fast_ms", fast);
    metrics.emplace_back("meta_" + c.name + "_speedup", speedup);
  }
  bench::emit(t,
              "Full second-order meta-gradient step — compat vs fast "
              "dispatch (" + std::to_string(reps) + " reps, median)",
              csv);
  metrics.emplace_back("meta_speedup_min", worst_speedup);

  // -- section 2: raw gemm on the sweep's dominant shapes -------------------
  {
    util::Table g({"shape m.k.n", "compat ms", "fast ms", "speedup"});
    struct Shape { std::size_t m, k, n; };
    const std::vector<Shape> shapes =
        smoke ? std::vector<Shape>{{20, 60, 10}}
              : std::vector<Shape>{{20, 784, 10}, {100, 784, 10},
                                   {784, 20, 10}, {196, 196, 64}};
    util::Rng rng(seed ^ 0x9e77);
    for (const auto& s : shapes) {
      const auto a = rng.normal_vector(s.m * s.k);
      const auto b = rng.normal_vector(s.k * s.n);
      std::vector<double> out(s.m * s.n);
      auto run = [&](kern::Mode m) {
        return time_median_ms(reps, 1.0, [&] {
          kern::gemm(s.m, s.n, s.k, a.data(), b.data(), out.data(), m);
        });
      };
      const double compat = run(kern::Mode::kCompat);
      const double fast = run(kern::Mode::kFast);
      const std::string label = std::to_string(s.m) + "." +
                                std::to_string(s.k) + "." +
                                std::to_string(s.n);
      g.add_row({label, compat, fast, compat / fast});
      metrics.emplace_back("gemm_" + label + "_speedup", compat / fast);
    }
    bench::emit(g, "Raw kern::gemm, dominant sweep shapes", csv);
  }

  // -- section 3: fused sigmoid-VJP chain vs three-pass temporaries ---------
  {
    const std::size_t n = smoke ? std::size_t{4096} : std::size_t{65536};
    util::Rng rng(seed ^ 0xfaded);
    const auto gvec = rng.normal_vector(n);
    auto svec = rng.normal_vector(n);
    kern::sigmoid(n, svec.data(), svec.data());
    std::vector<double> out(n);
    const double chained = time_median_ms(reps, 1.0, [&] {
      // The legacy graph shape: three tensor temporaries, three passes.
      const tensor::Tensor s(1, n, svec);
      const tensor::Tensor ones(1, n, std::vector<double>(n, 1.0));
      const tensor::Tensor d1 = ones - s;
      const tensor::Tensor d2 = tensor::hadamard(s, d1);
      const tensor::Tensor d3 = tensor::hadamard(tensor::Tensor(1, n, gvec), d2);
      out[0] = d3.flat()[0];
    });
    const double fused = time_median_ms(reps, 1.0, [&] {
      kern::sigmoid_mul(n, gvec.data(), svec.data(), out.data());
    });
    util::Table f({"chain", "3-pass ms", "fused ms", "speedup"});
    f.add_row({"sigmoid vjp n=" + std::to_string(n), chained, fused,
               chained / fused});
    bench::emit(f, "Fused elementwise VJP vs tensor-temporary chain", csv);
    // n is part of the key: smoke and full runs measure different cache
    // regimes, so --compare must not match one against the other.
    metrics.emplace_back(
        "fused_sigmoid_vjp_n" + std::to_string(n) + "_speedup",
        chained / fused);
  }

  // -- section 4: tape construction, arena vs heap --------------------------
  {
    const std::size_t ops = smoke ? std::size_t{64} : std::size_t{512};
    util::Rng rng(seed ^ 0xa11c);
    const tensor::Tensor x0(4, 8, rng.normal_vector(32));
    auto build = [&] {
      autodiff::Var v(x0, true);
      for (std::size_t i = 0; i < ops; ++i) v = autodiff::ops::relu(v);
      FEDML_CHECK(v.value().rows() == 4, "tape bench shape drift");
    };
    const double heap = time_median_ms(reps, 1.0, build);
    const double arena = time_median_ms(reps, 1.0, [&] {
      kern::Episode ep;
      build();
    });
    util::Table a({"tape", "heap ms", "arena ms", "speedup"});
    a.add_row({std::to_string(ops) + "-op graph", heap, arena, heap / arena});
    bench::emit(a, "Tape construction — episode arena vs heap nodes", csv);
    metrics.emplace_back("tape_arena_" + std::to_string(ops) + "op_speedup",
                         heap / arena);
    const auto st = kern::episode_stats();
    metrics.emplace_back("arena_reuse_ratio",
                         st.episodes == 0
                             ? 0.0
                             : static_cast<double>(st.arenas_reused) /
                                   static_cast<double>(st.episodes));
  }

  bench::write_bench_json("meta_step", metrics, json_dir);
  return 0;
}
