// Figure 4(e): impact of the FGSM perturbation strength ξ. Compares the
// post-adaptation target accuracy of FedML and Robust FedML (λ = 0.1) under
// attacks of growing strength. Paper shape: both degrade as ξ grows, and the
// improvement of Robust FedML over FedML widens with stronger perturbation.

#include "bench_common.h"
#include "robust/adversary.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 60));
  const auto side = static_cast<std::size_t>(cli.get_int("side", 14));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 300));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto steps = static_cast<std::size_t>(cli.get_int("adapt-steps", 5));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const double alpha = cli.get_double("alpha", 0.05);
  const double beta = cli.get_double("beta", 0.1);
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  auto e = bench::mnist_experiment(nodes, side, k, seed);
  const auto clip = robust::ClipRange{{0.0, 1.0}};

  core::FedMLConfig base;
  base.alpha = alpha;
  base.beta = beta;
  base.total_iterations = total;
  base.local_steps = 5;
  base.threads = threads;
  base.track_loss = false;
  const auto plain = core::train_fedml(*e.model, e.sources, e.theta0, base);

  core::RobustFedMLConfig rcfg;
  rcfg.base = base;
  rcfg.lambda = 0.1;
  rcfg.nu = 1.0;
  rcfg.ascent_steps = 10;
  rcfg.rounds_between = 7;
  rcfg.max_generations = 2;
  rcfg.clip = clip;
  const auto robust_run =
      core::train_robust_fedml(*e.model, e.sources, e.theta0, rcfg);

  util::Table t({"xi", "FedML acc", "Robust acc", "improvement"});
  for (const double xi : {0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4}) {
    const auto attack = [&](const nn::ParamList& params,
                            const data::Dataset& d) {
      return xi == 0.0 ? d : robust::fgsm_attack(*e.model, params, d, xi, clip);
    };
    util::Rng e1(seed + 5), e2(seed + 5);
    const double a_plain =
        core::evaluate_targets(*e.model, plain.theta, e.fd, e.target_ids, k,
                               base.alpha, steps, e1, attack)
            .accuracy.back();
    const double a_robust =
        core::evaluate_targets(*e.model, robust_run.theta, e.fd, e.target_ids,
                               k, base.alpha, steps, e2, attack)
            .accuracy.back();
    t.add_row({xi, a_plain, a_robust, a_robust - a_plain});
  }
  bench::emit(t, "Figure 4(e) — accuracy vs FGSM strength xi (after "
                 "adaptation, MNIST-like)",
              csv);
  return 0;
}
