// Theorem 2 bound check: runs Algorithm 1 on the closed-form quadratic
// testbed (where every assumption constant is exact) and prints the
// empirical optimality gap next to the theoretical bound for several T0.
// The bound must upper-bound the empirical gap at every aggregation; the
// error floor B(1−αμ)/(1−ξ^T0)·h(T0) vanishes at T0 = 1 (Corollary 1).

#include <iostream>

#include "theory/bounds.h"
#include "theory/quadratic.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 10));
  const auto dim = static_cast<std::size_t>(cli.get_int("dim", 6));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 200));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  util::Rng rng(seed);
  const auto fed =
      theory::QuadraticFederation::heterogeneous(nodes, dim, 1.0, 3.0, 1.0, rng);
  const tensor::Tensor theta0 = tensor::Tensor::full(dim, 1, 2.0);

  const auto c0 = fed.constants(0.0);
  const double alpha = 0.5 * theory::alpha_max(c0);
  const auto l = theory::lemma1_constants(c0, alpha);
  const double beta = 0.4 * theory::beta_max(l);
  const double g0 = fed.global_meta_loss(theta0, alpha) -
                    fed.global_meta_loss(fed.meta_minimizer(alpha), alpha);

  std::cout << "alpha=" << alpha << " beta=" << beta << " mu'=" << l.mu_prime
            << " H'=" << l.h_prime << "\n\n";

  util::Table t({"T0", "iteration", "empirical gap", "Theorem 2 bound",
                 "bound holds"});
  t.set_precision(5);
  bool all_hold = true;
  for (const std::size_t t0 : {1, 5, 10, 20}) {
    const auto sim = fed.simulate_fedml(theta0, alpha, beta, total, t0);
    const auto cc = fed.constants(sim.max_iterate_norm + 1e-9);
    const auto terms = theory::theorem2_terms(cc, alpha, beta, t0);
    for (std::size_t n = 0; n < sim.gap.size(); ++n) {
      const std::size_t it = (n + 1) * t0;
      if (it % 20 != 0 && it != total) continue;  // thin the printout
      const double bound = theory::theorem2_bound(terms, g0, it);
      const bool holds = sim.gap[n] <= bound + 1e-9;
      all_hold = all_hold && holds;
      t.add_row({static_cast<std::int64_t>(t0), static_cast<std::int64_t>(it),
                 sim.gap[n], bound, std::string(holds ? "yes" : "NO")});
    }
  }
  t.print(std::cout, "Theorem 2 — empirical optimality gap vs bound");
  if (!csv.empty()) t.write_csv_file(csv);
  std::cout << (all_hold ? "\nall bounds hold\n" : "\nBOUND VIOLATED\n");
  return all_hold ? 0 : 1;
}
