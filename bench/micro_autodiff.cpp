// Microbenchmarks for the autodiff engine (google-benchmark): the relative
// cost of forward evaluation, first-order backward, and the double-backward
// MAML meta-gradient — the ablation data behind DESIGN.md's choice of exact
// second-order meta-gradients.

#include <benchmark/benchmark.h>

#include "core/meta.h"
#include "micro_common.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/params.h"
#include "util/rng.h"

namespace {

using namespace fedml;

struct Setup {
  std::shared_ptr<nn::Module> model;
  nn::ParamList theta;
  data::Dataset train, test;

  Setup(std::size_t dim, std::size_t classes, std::size_t batch) {
    model = nn::make_softmax_regression(dim, classes);
    util::Rng rng(1);
    theta = model->init_params(rng);
    const auto make = [&](std::uint64_t seed) {
      util::Rng r(seed);
      data::Dataset d;
      d.x = tensor::Tensor::randn(batch, dim, r);
      d.y.resize(batch);
      for (auto& y : d.y)
        y = static_cast<std::size_t>(
            r.uniform_int(0, static_cast<std::int64_t>(classes) - 1));
      return d;
    };
    train = make(2);
    test = make(3);
  }
};

void BM_ForwardLoss(benchmark::State& state) {
  Setup s(static_cast<std::size_t>(state.range(0)), 10, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::empirical_loss(*s.model, s.theta, s.train));
  }
}
BENCHMARK(BM_ForwardLoss)->Arg(60)->Arg(196)->Arg(784);

void BM_FirstOrderGradient(benchmark::State& state) {
  Setup s(static_cast<std::size_t>(state.range(0)), 10, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::loss_gradient(*s.model, s.theta, s.train));
  }
}
BENCHMARK(BM_FirstOrderGradient)->Arg(60)->Arg(196)->Arg(784);

void BM_MetaGradientFirstOrder(benchmark::State& state) {
  Setup s(static_cast<std::size_t>(state.range(0)), 10, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::meta_gradient(*s.model, s.theta, s.train,
                                                 s.test, 0.01,
                                                 core::MetaOrder::kFirstOrder));
  }
}
BENCHMARK(BM_MetaGradientFirstOrder)->Arg(60)->Arg(196)->Arg(784);

void BM_MetaGradientSecondOrder(benchmark::State& state) {
  Setup s(static_cast<std::size_t>(state.range(0)), 10, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::meta_gradient(*s.model, s.theta, s.train, s.test, 0.01,
                            core::MetaOrder::kSecondOrder));
  }
}
BENCHMARK(BM_MetaGradientSecondOrder)->Arg(60)->Arg(196)->Arg(784);

void BM_MlpMetaGradientSecondOrder(benchmark::State& state) {
  // Sent140-like shape: 50-d features through a 64/32/16 MLP.
  const auto model = nn::make_mlp(50, {64, 32, 16}, 2);
  util::Rng rng(1);
  const auto theta = model->init_params(rng);
  util::Rng dr(2);
  data::Dataset train, test;
  train.x = tensor::Tensor::randn(10, 50, dr);
  train.y.assign(10, 1);
  test.x = tensor::Tensor::randn(15, 50, dr);
  test.y.assign(15, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::meta_gradient(*model, theta, train, test, 0.01));
  }
}
BENCHMARK(BM_MlpMetaGradientSecondOrder);

}  // namespace

int main(int argc, char** argv) {
  return fedml::bench::micro_main(argc, argv, "micro_autodiff");
}
