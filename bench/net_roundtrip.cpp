// Localhost RPC micro-benchmark for the src/net/ wire path.
//
// An echo-style platform thread accepts one connection and answers every
// kUpdate frame with a kModel frame carrying the decoded parameters — one
// full uplink + downlink round trip through encode/compress/checksum/
// send/recv/verify/decode, exactly the per-round path of the distributed
// runtime. The client sweeps payload size × uplink codec and reports
// p50/p95/p99 round-trip latency (obs::exact_percentile over the raw
// sample vector), wire bytes per RPC, and effective throughput.
//
// `--smoke` shrinks the sweep for CI; `--csv=<path>` dumps the table.

#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "net/frame.h"
#include "net/message_conn.h"
#include "net/socket.h"
#include "obs/histogram.h"
#include "tensor/tensor.h"
#include "util/error.h"

namespace {

using namespace fedml;

constexpr double kIoTimeout = 10.0;

/// One weight matrix of `elems` doubles (rows × 100), deterministic values.
nn::ParamList make_params(std::size_t elems, std::uint64_t seed) {
  const std::size_t cols = 100;
  const std::size_t rows = (elems + cols - 1) / cols;
  tensor::Tensor t(rows, cols);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) t(i, j) = rng.uniform(-1.0, 1.0);
  nn::ParamList p;
  p.emplace_back(std::move(t), true);
  return p;
}

/// Echo loop: every update is decoded and answered with a model frame of
/// the decoded parameters; any close/shutdown ends the loop.
void serve_echo(net::Socket sock) {
  net::MessageConn conn(std::move(sock));
  std::uint64_t round = 0;
  for (;;) {
    net::Frame frame;
    try {
      frame = conn.recv(kIoTimeout);
    } catch (const util::Error&) {
      return;  // client hung up: sweep point done
    }
    if (frame.type != net::MessageType::kUpdate) continue;
    const net::UpdateBody update = net::decode_update(frame);
    conn.send(net::encode_model(net::MessageType::kModel,
                                {++round, update.params}),
              kIoTimeout);
  }
}

struct SweepPoint {
  std::size_t elems = 0;
  net::WireCodec codec = net::WireCodec::kNone;
  const char* codec_name = "none";
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const auto csv = cli.get_string("csv", "");
  const auto iters =
      static_cast<std::size_t>(cli.get_int("iters", smoke ? 40 : 300));
  const auto warmup =
      static_cast<std::size_t>(cli.get_int("warmup", smoke ? 5 : 20));
  const double topk_fraction = cli.get_double("topk", 0.1);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
  cli.finish();

  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{1'000, 10'000}
            : std::vector<std::size_t>{1'000, 10'000, 100'000};
  std::vector<SweepPoint> sweep;
  for (const auto elems : sizes)
    for (const auto& [codec, name] :
         {std::pair{net::WireCodec::kNone, "none"},
          std::pair{net::WireCodec::kInt8, "int8"},
          std::pair{net::WireCodec::kTopK, "topk"}})
      sweep.push_back({elems, codec, name});

  util::Table t({"elems", "codec", "up bytes", "down bytes", "p50 ms",
                 "p95 ms", "p99 ms", "rpc/s", "MB/s"});

  // Headline metrics (largest payload, per codec) for BENCH_net_roundtrip.json.
  bench::BenchMetrics metrics;

  for (const auto& point : sweep) {
    const nn::ParamList params = make_params(point.elems, seed);
    net::Listener listener(0);
    net::Socket client_sock =
        net::Socket::connect_to("127.0.0.1", listener.port(), 5.0);
    std::thread server(serve_echo, listener.accept(5.0));

    net::MessageConn conn(std::move(client_sock));
    const net::Frame update = net::encode_update(
        {/*node_id=*/0, /*base_round=*/0, /*iterations_done=*/0, params,
         /*wire_bytes=*/0},
        point.codec, topk_fraction);
    const double up_bytes =
        static_cast<double>(net::kHeaderBytes + update.payload.size());
    double down_bytes = 0.0;

    std::vector<double> latency_ms;
    latency_ms.reserve(iters);
    double busy_s = 0.0;
    for (std::size_t i = 0; i < warmup + iters; ++i) {
      util::Stopwatch rpc;
      conn.send(update, kIoTimeout);
      const net::Frame reply = conn.recv(kIoTimeout);
      const double s = rpc.seconds();
      const net::ModelBody model = net::decode_model(reply);
      FEDML_CHECK(!model.params.empty(), "echo reply lost the parameters");
      if (i < warmup) continue;
      latency_ms.push_back(s * 1e3);
      busy_s += s;
      down_bytes = static_cast<double>(net::kHeaderBytes +
                                       reply.payload.size());
    }
    conn.shutdown();
    server.join();

    const double n = static_cast<double>(iters);
    t.add_row({static_cast<std::int64_t>(point.elems),
               std::string(point.codec_name), up_bytes, down_bytes,
               obs::exact_percentile(latency_ms, 0.50),
               obs::exact_percentile(latency_ms, 0.95),
               obs::exact_percentile(latency_ms, 0.99), n / busy_s,
               (up_bytes + down_bytes) * n / busy_s / 1e6});
    if (point.elems == sizes.back()) {
      const std::string suffix = std::string("_") + point.codec_name;
      metrics.emplace_back("p50_ms" + suffix,
                           obs::exact_percentile(latency_ms, 0.50));
      metrics.emplace_back("p99_ms" + suffix,
                           obs::exact_percentile(latency_ms, 0.99));
      metrics.emplace_back("rpc_per_s" + suffix, n / busy_s);
      metrics.emplace_back("up_bytes" + suffix, up_bytes);
    }
  }

  bench::emit(t, "net round-trip — payload × uplink codec sweep", csv);
  bench::write_bench_json("net_roundtrip", metrics);
  return 0;
}
