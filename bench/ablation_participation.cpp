// Ablation: client sampling and upload failures. The paper assumes full
// participation; real edge fleets do not cooperate that nicely. We sweep the
// participation fraction and the injected upload-loss rate and report the
// achieved meta-objective and communication bill — quantifying how gracefully
// FedML degrades.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 50));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 250));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  auto e = bench::synthetic_experiment(0.5, 0.5, nodes, k, seed);

  const auto run = [&](double participation, double failure) {
    core::FedMLConfig cfg;
    cfg.alpha = 0.05;
    cfg.beta = 0.02;
    cfg.total_iterations = total;
    cfg.local_steps = 5;
    cfg.threads = threads;
    cfg.participation = participation;
    cfg.upload_failure_prob = failure;
    return core::train_fedml(*e.model, e.sources, e.theta0, cfg);
  };

  util::Table t({"participation", "upload loss", "final G", "uplink MB",
                 "idle node-rounds", "dropped uploads"});
  for (const double p : {1.0, 0.5, 0.2}) {
    for (const double fail : {0.0, 0.2}) {
      const auto r = run(p, fail);
      t.add_row({p, fail, r.history.back().global_loss, r.comm.bytes_up / 1e6,
                 static_cast<std::int64_t>(r.comm.node_rounds_idle),
                 static_cast<std::int64_t>(r.comm.uploads_dropped)});
    }
  }
  bench::emit(t, "Ablation — client sampling & failure injection "
                 "(Synthetic(0.5,0.5), fixed T)",
              csv);
  std::cout << "reading: FedML degrades gracefully — partial participation "
               "mostly costs convergence speed, not correctness.\n";
  return 0;
}
