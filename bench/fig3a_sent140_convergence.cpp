// Figure 3(a): convergence of FedML on the (non-convex) Sent140-like task
// with T0 = 5. Paper shape: the meta-loss decreases steadily, demonstrating
// good convergence beyond the convex theory.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  // 200 nodes by default for CPU budget; pass --nodes=706 for Table-I scale.
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 200));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 150));
  const auto t0 = static_cast<std::size_t>(cli.get_int("local-steps", 5));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  // Paper model: 3 hidden layers (256/128/64) on 300-d GloVe; scaled to
  // 64/32/16 on 50-d frozen embeddings (see DESIGN.md substitutions).
  auto e = bench::sent140_experiment(nodes, {64, 32, 16}, k, seed);

  core::FedMLConfig cfg;
  cfg.alpha = 0.01;  // paper: α = 0.01, β = 0.3 for Sent140
  cfg.beta = 0.3;
  cfg.total_iterations = total;
  cfg.local_steps = t0;
  cfg.threads = threads;

  util::Stopwatch sw;
  const auto result = core::train_fedml(*e.model, e.sources, e.theta0, cfg);

  util::Table t({"iteration", "global meta-loss"});
  for (const auto& rec : result.history) {
    t.add_row({static_cast<std::int64_t>(rec.iteration), rec.global_loss});
  }
  bench::emit(t, "Figure 3(a) — FedML convergence on Sent140-like (T0=5)", csv);
  std::cout << "sources=" << e.sources.size() << " params="
            << e.model->num_scalars() << " wall=" << sw.seconds() << "s\n";
  std::cout << "paper-shape check: loss decreases -> "
            << result.history.front().global_loss << " -> "
            << result.history.back().global_loss << "\n";
  return 0;
}
