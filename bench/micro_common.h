#pragma once

// Adapter between the google-benchmark microbenchmarks and the tracked
// BENCH_<name>.json artifacts that every other bench binary emits via
// bench::write_bench_json. BENCHMARK_MAIN() owns main() outright and offers
// no hook to observe results, so the micro benches use micro_main() instead:
// it runs the standard console reporter wrapped in a capture layer, then
// writes one `<benchmark name>_ms` metric per run.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_common.h"

namespace fedml::bench {

/// Console reporter that additionally records each benchmark's
/// per-iteration real time in milliseconds. Aggregate rows (min/median/…,
/// only present with --benchmark_repetitions) and errored runs are skipped —
/// the JSON carries one number per benchmark instance, matching the rows of
/// the console table.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& r : runs) {
      if (r.error_occurred || r.run_type != Run::RT_Iteration) continue;
      const double ms = r.iterations == 0
                            ? 0.0
                            : r.real_accumulated_time /
                                  static_cast<double>(r.iterations) * 1e3;
      metrics_.emplace_back(sanitize(r.benchmark_name()) + "_ms", ms);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const BenchMetrics& metrics() const { return metrics_; }

 private:
  /// "BM_Matmul/16" → "BM_Matmul_16": metric keys stay shell- and
  /// spreadsheet-friendly (check_bench.py only requires non-empty strings,
  /// but downstream trend tooling splits on '/').
  static std::string sanitize(const std::string& name) {
    std::string out = name;
    for (auto& ch : out)
      if (ch == '/' || ch == ':' || ch == ' ') ch = '_';
    return out;
  }

  BenchMetrics metrics_;
};

/// Drop-in replacement for BENCHMARK_MAIN(): runs the registered benchmarks
/// with google-benchmark's usual CLI handling, then writes
/// `<json_dir>/BENCH_<name>.json`. `--json-dir=<dir>` is consumed here;
/// every other flag passes through to google-benchmark untouched.
inline int micro_main(int argc, char** argv, const std::string& name) {
  std::string json_dir = ".";
  std::vector<char*> pass;
  pass.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--json-dir=";
    if (arg.rfind(prefix, 0) == 0) {
      json_dir = arg.substr(prefix.size());
    } else {
      pass.push_back(argv[i]);
    }
  }
  int pass_argc = static_cast<int>(pass.size());
  benchmark::Initialize(&pass_argc, pass.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, pass.data())) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  write_bench_json(name, reporter.metrics(), json_dir);
  return 0;
}

}  // namespace fedml::bench
