// Ablation: lossy uplink compression. Orthogonal to the paper's T0 knob —
// instead of uploading less OFTEN, upload less PER ROUND. Compares lossless
// full-precision uploads against int8 quantization and top-k sparsification
// during FedML training: final meta-objective vs uplink bytes.

#include "bench_common.h"
#include "fed/compression.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 50));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 250));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  auto e = bench::synthetic_experiment(0.5, 0.5, nodes, k, seed);

  struct Scheme {
    std::string name;
    fed::Platform::Config::UplinkCodec codec;
  };
  const std::vector<Scheme> schemes = {
      {"lossless (f64)", {}},
      {"int8 quantized",
       [](const nn::ParamList& p) {
         const auto blob = fed::quantize_int8(p);
         return std::pair<nn::ParamList, std::size_t>(fed::dequantize_int8(blob),
                                                      blob.size());
       }},
      {"top-10% sparse",
       [](const nn::ParamList& p) {
         const auto blob = fed::sparsify_topk(p, 0.10);
         return std::pair<nn::ParamList, std::size_t>(fed::desparsify_topk(blob),
                                                      blob.size());
       }},
  };

  util::Table t({"uplink scheme", "final G", "uplink MB", "bytes vs lossless"});
  double lossless_bytes = 0.0;
  for (const auto& scheme : schemes) {
    core::FedMLConfig cfg;
    cfg.alpha = 0.05;
    cfg.beta = 0.02;
    cfg.total_iterations = total;
    cfg.local_steps = 5;
    cfg.threads = threads;
    cfg.uplink_codec = scheme.codec;
    const auto r = core::train_fedml(*e.model, e.sources, e.theta0, cfg);
    if (lossless_bytes == 0.0) lossless_bytes = r.comm.bytes_up;
    t.add_row({scheme.name, r.history.back().global_loss,
               r.comm.bytes_up / 1e6, r.comm.bytes_up / lossless_bytes});
  }
  bench::emit(t, "Ablation — lossy uplink compression during FedML training "
                 "(Synthetic(0.5,0.5))",
              csv);
  std::cout << "reading: int8 is nearly free accuracy-wise at ~1/8 the "
               "bytes; aggressive top-k trades more.\n";
  return 0;
}
