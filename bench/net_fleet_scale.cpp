// Fleet-scale benchmark for the reactor-based aggregation tier: the same
// lockstep workload driven through a FLAT platform (every node uplinks to
// one server) and through a 2-leaf aggregation TREE (root + 2 leaf
// platforms, each serving half the fleet; leaves uplink kShardAggregate).
//
// Every "node" is a thin protocol thread — Hello, adopt Welcome, then echo
// the adopted parameters back as its update each round — so the numbers
// isolate the wire + reactor + merge path rather than local training. For
// each fleet size the harness reports rounds/sec, wall time, and the wire
// ledger split by tier (edge = nodes <-> platform, uplink = leaf <-> root);
// the tree's edge bytes match the flat run's while the root only ever sees
// 2 aggregate frames per round regardless of fleet size.
//
// `--smoke` shrinks the sweep for CI; `--csv=<path>` dumps the table.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "fed/comm.h"
#include "net/frame.h"
#include "net/hierarchy.h"
#include "net/message_conn.h"
#include "net/platform_server.h"
#include "net/socket.h"
#include "tensor/tensor.h"
#include "util/error.h"

namespace {

using namespace fedml;

constexpr double kIoTimeout = 30.0;

/// One weight matrix of `elems` doubles (rows × 100), deterministic values.
nn::ParamList make_params(std::size_t elems, std::uint64_t seed) {
  const std::size_t cols = 100;
  const std::size_t rows = (elems + cols - 1) / cols;
  tensor::Tensor t(rows, cols);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) t(i, j) = rng.uniform(-1.0, 1.0);
  nn::ParamList p;
  p.emplace_back(std::move(t), true);
  return p;
}

/// Minimal lockstep node: handshake, then upload an echo of every adopted
/// model until the round budget is spent, and linger for Shutdown. This is
/// net::NodeClient's wire schedule without the local training in between.
void run_echo_node(std::uint16_t port, std::uint64_t node_id,
                   std::size_t rounds) {
  net::MessageConn conn(net::Socket::connect_to("127.0.0.1", port, 10.0));
  conn.send(net::encode_hello({node_id, 1.0}), kIoTimeout);
  net::ModelBody model = net::decode_model(conn.recv(kIoTimeout));
  while (model.round < rounds) {
    conn.send(net::encode_update({node_id, model.round, /*iterations=*/1,
                                  model.params, /*wire_bytes=*/0},
                                 net::WireCodec::kNone, 0.1),
              kIoTimeout);
    const net::Frame frame = conn.recv(kIoTimeout);
    if (frame.type == net::MessageType::kShutdown) return;
    model = net::decode_model(frame);
  }
  for (;;) {  // round budget spent: await Shutdown like NodeClient does
    if (conn.recv(kIoTimeout).type == net::MessageType::kShutdown) return;
  }
}

struct RunResult {
  double wall_s = 0.0;
  fed::CommTotals edge;    ///< nodes <-> platform tier
  fed::CommTotals uplink;  ///< leaf <-> root tier (tree only)
};

RunResult run_flat(std::size_t fleet, std::size_t rounds,
                   const nn::ParamList& theta0) {
  net::PlatformServer::Config cfg;
  cfg.expected_nodes = fleet;
  cfg.rounds = rounds;
  net::PlatformServer server(cfg);
  server.set_global(theta0);

  std::vector<std::thread> nodes;
  nodes.reserve(fleet);
  for (std::size_t i = 0; i < fleet; ++i)
    nodes.emplace_back(run_echo_node, server.port(), i, rounds);

  util::Stopwatch clock;
  const net::PlatformServer::Totals totals = server.run();
  RunResult r;
  r.wall_s = clock.seconds();
  for (auto& t : nodes) t.join();
  FEDML_CHECK(totals.nodes_shed == 0, "flat run shed nodes");
  r.edge = totals.comm;
  return r;
}

RunResult run_tree(std::size_t fleet, std::size_t rounds,
                   const nn::ParamList& theta0) {
  net::RootAggregator::Config rcfg;
  rcfg.leaves = 2;
  rcfg.rounds = rounds;
  net::RootAggregator root(rcfg);
  root.set_global(theta0);

  const std::size_t per_shard = fleet / 2;
  std::vector<std::unique_ptr<net::LeafPlatform>> leaves;
  for (std::uint64_t shard = 0; shard < 2; ++shard) {
    net::LeafPlatform::Config lcfg;
    lcfg.fleet.expected_nodes = per_shard;
    lcfg.fleet.rounds = rounds;
    lcfg.root_port = root.port();
    lcfg.shard_id = shard;
    leaves.push_back(std::make_unique<net::LeafPlatform>(lcfg));
  }

  std::vector<net::LeafPlatform::Totals> leaf_totals(2);
  std::vector<std::thread> threads;
  for (std::size_t shard = 0; shard < 2; ++shard)
    threads.emplace_back(
        [&, shard] { leaf_totals[shard] = leaves[shard]->run(); });
  for (std::size_t i = 0; i < fleet; ++i)
    threads.emplace_back(run_echo_node, leaves[i / per_shard]->port(), i,
                         rounds);

  util::Stopwatch clock;
  const net::PlatformServer::Totals root_totals = root.run();
  RunResult r;
  r.wall_s = clock.seconds();
  for (auto& t : threads) t.join();
  FEDML_CHECK(root_totals.nodes_shed == 0, "tree run shed a leaf");
  for (const auto& lt : leaf_totals) {
    FEDML_CHECK(lt.rounds_relayed == rounds, "leaf missed a relay round");
    r.edge.bytes_up += lt.fleet.comm.bytes_up;
    r.edge.bytes_down += lt.fleet.comm.bytes_down;
    r.edge.aggregations += lt.fleet.comm.aggregations;
    r.uplink.bytes_up += lt.uplink.bytes_up;
    r.uplink.bytes_down += lt.uplink.bytes_down;
  }
  r.uplink.aggregations = root_totals.comm.aggregations;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const auto csv = cli.get_string("csv", "");
  const auto rounds =
      static_cast<std::size_t>(cli.get_int("rounds", smoke ? 3 : 20));
  const auto elems =
      static_cast<std::size_t>(cli.get_int("elems", smoke ? 500 : 2'000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 29));
  cli.finish();

  const std::vector<std::size_t> fleets =
      smoke ? std::vector<std::size_t>{4, 8}
            : std::vector<std::size_t>{8, 16, 32};
  const nn::ParamList theta0 = make_params(elems, seed);

  util::Table t({"fleet", "topology", "rounds/s", "wall s", "edge up B",
                 "edge down B", "uplink up B", "uplink down B"});
  bench::BenchMetrics metrics;

  for (const auto fleet : fleets) {
    const RunResult flat = run_flat(fleet, rounds, theta0);
    const RunResult tree = run_tree(fleet, rounds, theta0);
    const double n = static_cast<double>(rounds);
    t.add_row({static_cast<std::int64_t>(fleet), std::string("flat"),
               n / flat.wall_s, flat.wall_s, flat.edge.bytes_up,
               flat.edge.bytes_down, 0.0, 0.0});
    t.add_row({static_cast<std::int64_t>(fleet), std::string("tree"),
               n / tree.wall_s, tree.wall_s, tree.edge.bytes_up,
               tree.edge.bytes_down, tree.uplink.bytes_up,
               tree.uplink.bytes_down});
    const std::string suffix = "_n" + std::to_string(fleet);
    metrics.emplace_back("flat_rounds_per_s" + suffix, n / flat.wall_s);
    metrics.emplace_back("tree_rounds_per_s" + suffix, n / tree.wall_s);
    metrics.emplace_back("flat_up_bytes" + suffix, flat.edge.bytes_up);
    metrics.emplace_back("tree_edge_up_bytes" + suffix, tree.edge.bytes_up);
    metrics.emplace_back("tree_uplink_up_bytes" + suffix,
                         tree.uplink.bytes_up);
  }

  bench::emit(t, "net fleet scale — flat platform vs 2-leaf tree", csv);
  bench::write_bench_json("net_fleet_scale", metrics);
  return 0;
}
