// Table I of the paper: statistics of the three datasets.
// Paper values: Synthetic 50 nodes (17 ± 5 samples/node), MNIST 100 nodes
// (34 ± 5), Sent140 706 nodes (42 ± 35). We regenerate each federation at
// full scale and report achieved statistics next to the paper's.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const std::string csv = cli.get_string("csv", "");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cli.finish();

  struct PaperRow {
    const char* name;
    std::int64_t nodes;
    double mean, stdev;
  };
  const PaperRow paper[] = {{"Synthetic", 50, 17, 5},
                            {"MNIST", 100, 34, 5},
                            {"Sent140", 706, 42, 35}};

  data::SyntheticConfig scfg;
  scfg.seed = seed;
  data::MnistLikeConfig mcfg;
  mcfg.seed = seed;
  data::Sent140LikeConfig tcfg;
  tcfg.seed = seed;

  const data::FederatedDataset sets[] = {data::make_synthetic(scfg),
                                         data::make_mnist_like(mcfg),
                                         data::make_sent140_like(tcfg)};

  util::Table t({"dataset", "nodes", "paper nodes", "mean/node", "paper mean",
                 "stdev", "paper stdev"});
  t.set_precision(1);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto s = data::sample_stats(sets[i]);
    t.add_row({std::string(paper[i].name), static_cast<std::int64_t>(s.nodes),
               paper[i].nodes, s.mean, paper[i].mean, s.stdev, paper[i].stdev});
  }
  bench::emit(t, "Table I — dataset statistics (ours vs paper)", csv);
  return 0;
}
