#pragma once

// Shared setup code for the figure-reproduction harnesses. Each bench binary
// is a plain executable that prints the rows/series of one table or figure
// from the paper (and optionally writes CSV via --csv=<path>).

#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/adaptation.h"
#include "core/algorithms.h"
#include "data/mnist_like.h"
#include "data/sent140_like.h"
#include "data/synthetic.h"
#include "nn/module.h"
#include "obs/telemetry.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace fedml::bench {

/// A ready-to-train experiment: federation + model + source/target split.
struct Experiment {
  data::FederatedDataset fd;
  std::shared_ptr<nn::Module> model;
  std::vector<fed::EdgeNode> sources;
  std::vector<std::size_t> target_ids;
  nn::ParamList theta0;
};

/// Build the experiment around a generated federation: 80% of nodes become
/// sources with a K-shot split, the rest are held-out targets.
inline Experiment make_experiment(data::FederatedDataset fd,
                                  std::shared_ptr<nn::Module> model,
                                  std::size_t k, std::uint64_t seed) {
  Experiment e;
  e.fd = std::move(fd);
  e.model = std::move(model);
  util::Rng rng(seed);
  const auto split = data::split_source_target(e.fd.num_nodes(), 0.8, rng);
  e.sources = fed::make_edge_nodes(e.fd, split.source_ids, k, rng);
  e.target_ids = split.target_ids;
  util::Rng init(seed ^ 0xabcdef);
  e.theta0 = e.model->init_params(init);
  return e;
}

inline Experiment synthetic_experiment(double alpha, double beta,
                                       std::size_t nodes, std::size_t k,
                                       std::uint64_t seed) {
  data::SyntheticConfig cfg;
  cfg.alpha = alpha;
  cfg.beta = beta;
  cfg.num_nodes = nodes;
  cfg.seed = seed;
  auto fd = data::make_synthetic(cfg);
  auto model = nn::make_softmax_regression(cfg.input_dim, cfg.num_classes);
  return make_experiment(std::move(fd), std::move(model), k, seed + 1);
}

inline Experiment mnist_experiment(std::size_t nodes, std::size_t side,
                                   std::size_t k, std::uint64_t seed) {
  data::MnistLikeConfig cfg;
  cfg.num_nodes = nodes;
  cfg.side = side;
  cfg.seed = seed;
  auto fd = data::make_mnist_like(cfg);
  auto model = nn::make_softmax_regression(fd.input_dim, fd.num_classes);
  return make_experiment(std::move(fd), std::move(model), k, seed + 1);
}

inline Experiment sent140_experiment(std::size_t nodes,
                                     const std::vector<std::size_t>& hidden,
                                     std::size_t k, std::uint64_t seed) {
  data::Sent140LikeConfig cfg;
  cfg.num_nodes = nodes;
  cfg.seed = seed;
  auto fd = data::make_sent140_like(cfg);
  auto model = nn::make_mlp(fd.input_dim, hidden, fd.num_classes);
  return make_experiment(std::move(fd), std::move(model), k, seed + 1);
}

inline void emit(const util::Table& table, const std::string& title,
                 const std::string& csv_path);

/// Shared driver for Figures 3(c)–(e): train FedML and FedAvg on the same
/// sources, then compare fast adaptation at the held-out targets for several
/// K (target dataset sizes). Prints accuracy-vs-adaptation-step series.
struct AdaptationComparisonConfig {
  double alpha = 0.01;          ///< inner rate (and target adaptation rate)
  double beta = 0.01;           ///< meta rate; FedAvg uses the same (paper)
  std::size_t total_iterations = 200;
  std::size_t local_steps = 5;  ///< paper uses T0 = 5 for Figure 3
  std::vector<std::size_t> ks{5, 10, 20};
  std::size_t adapt_steps = 5;
  std::size_t threads = 0;
  std::uint64_t seed = 42;
};

/// Rebuild the experiment's sources for dataset `fd` with K-shot splits of
/// size k (the comparison retrains per K, like the paper's protocol of
/// varying the training-set size).
inline void run_adaptation_comparison(
    const data::FederatedDataset& fd, const std::shared_ptr<nn::Module>& model,
    const AdaptationComparisonConfig& cfg, const std::string& title,
    const std::string& csv) {
  util::Rng split_rng(cfg.seed);
  const auto split = data::split_source_target(fd.num_nodes(), 0.8, split_rng);
  util::Rng init(cfg.seed ^ 0xabcdef);
  const nn::ParamList theta0 = model->init_params(init);

  util::Table t({"K", "adapt step", "FedML acc", "FedAvg acc", "FedML loss",
                 "FedAvg loss"});
  for (const auto k : cfg.ks) {
    util::Rng node_rng(cfg.seed + k);
    const auto sources = fed::make_edge_nodes(fd, split.source_ids, k, node_rng);

    core::FedMLConfig mcfg;
    mcfg.alpha = cfg.alpha;
    mcfg.beta = cfg.beta;
    mcfg.total_iterations = cfg.total_iterations;
    mcfg.local_steps = cfg.local_steps;
    mcfg.threads = cfg.threads;
    mcfg.track_loss = false;
    const auto meta = core::train_fedml(*model, sources, theta0, mcfg);

    core::FedAvgConfig acfg;
    acfg.lr = cfg.beta;  // paper: FedAvg shares FedML's meta rate β
    acfg.total_iterations = cfg.total_iterations;
    acfg.local_steps = cfg.local_steps;
    acfg.threads = cfg.threads;
    acfg.track_loss = false;
    const auto avg = core::train_fedavg(*model, sources, theta0, acfg);

    util::Rng e1(cfg.seed + 1000 + k), e2(cfg.seed + 1000 + k);
    const auto mc = core::evaluate_targets(*model, meta.theta, fd,
                                           split.target_ids, k, cfg.alpha,
                                           cfg.adapt_steps, e1);
    const auto ac = core::evaluate_targets(*model, avg.theta, fd,
                                           split.target_ids, k, cfg.alpha,
                                           cfg.adapt_steps, e2);
    for (std::size_t s = 0; s <= cfg.adapt_steps; ++s) {
      t.add_row({static_cast<std::int64_t>(k), static_cast<std::int64_t>(s),
                 mc.accuracy[s], ac.accuracy[s], mc.loss[s], ac.loss[s]});
    }
  }
  emit(t, title, csv);
}

/// Headline metrics for one bench run: ordered name → value pairs, written
/// as `BENCH_<name>.json` so CI (scripts/check_bench.py) and trend tooling
/// consume one stable machine-readable artifact per bench.
using BenchMetrics = std::vector<std::pair<std::string, double>>;

/// Write `<dir>/BENCH_<name>.json` with the schema
/// `{"bench": <name>, "metrics": {<key>: <number>, ...}}`. Every value must
/// be finite (JSON has no NaN/inf — sanitize before calling) and `metrics`
/// must be non-empty; both are enforced here and re-checked by
/// scripts/check_bench.py in CI.
inline void write_bench_json(const std::string& name,
                             const BenchMetrics& metrics,
                             const std::string& dir = ".") {
  FEDML_CHECK(!metrics.empty(), "write_bench_json: no metrics for " + name);
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::ofstream os(path);
  FEDML_CHECK(os.good(), "write_bench_json: cannot open " + path);
  os << "{\n  \"bench\": \"" << name << "\",\n  \"metrics\": {\n";
  os << std::setprecision(17);
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    FEDML_CHECK(std::isfinite(metrics[i].second),
                "write_bench_json: non-finite metric '" + metrics[i].first +
                    "' in " + name);
    os << "    \"" << metrics[i].first << "\": " << metrics[i].second
       << (i + 1 < metrics.size() ? ",\n" : "\n");
  }
  os << "  }\n}\n";
  FEDML_CHECK(os.good(), "write_bench_json: write failed for " + path);
  std::cout << "(bench json written to " << path << ")\n";
}

/// Print a table and optionally write it to --csv=<path>.
inline void emit(const util::Table& table, const std::string& title,
                 const std::string& csv_path) {
  table.print(std::cout, title);
  if (!csv_path.empty()) {
    table.write_csv_file(csv_path);
    std::cout << "(csv written to " << csv_path << ")\n";
  }
  std::cout << "\n";
}

}  // namespace fedml::bench
