// Figure 2(b): impact of the number of local update steps T0 on FedML
// convergence at fixed total iteration budget T (paper: Synthetic(0.5,0.5),
// T = 500). Paper shape: larger T0 leaves a larger convergence error.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 50));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 500));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string csv = cli.get_string("csv", "");
  const std::string trace_out = cli.get_string("trace-out", "");
  const std::string metrics_out = cli.get_string("metrics-out", "");
  cli.finish();

  const std::size_t t0s[] = {1, 5, 10, 20, 50};
  auto e = bench::synthetic_experiment(0.5, 0.5, nodes, k, seed);

  // One telemetry bundle across all five configs: the Chrome trace shows
  // them back to back, rounds nesting their per-node spans. Attached only
  // when an export was requested, so the default run pays no recording cost.
  obs::Telemetry telemetry;
  const bool instrument = !trace_out.empty() || !metrics_out.empty();

  std::vector<core::TrainResult> results;
  for (const auto t0 : t0s) {
    core::FedMLConfig cfg;
    cfg.alpha = 0.01;
    cfg.beta = 0.01;
    cfg.total_iterations = total;
    cfg.local_steps = t0;
    cfg.threads = threads;
    if (instrument) cfg.telemetry = &telemetry;
    obs::TraceSpan config_span;
    if (instrument) {
      config_span = telemetry.tracer.span("bench.config");
      config_span.arg("T0", static_cast<double>(t0));
    }
    results.push_back(core::train_fedml(*e.model, e.sources, e.theta0, cfg));
  }
  if (!trace_out.empty()) {
    telemetry.write_chrome_trace_file(trace_out);
    std::cout << "wrote Chrome trace to " << trace_out
              << " (open in Perfetto / chrome://tracing)\n";
  }
  if (!metrics_out.empty()) {
    telemetry.write_metrics_csv_file(metrics_out);
    std::cout << "wrote metrics CSV to " << metrics_out << "\n";
  }

  // Align trajectories on the common iteration grid (every 50 iterations all
  // T0 values have an aggregation point except T0=50 at coarser grid; report
  // at multiples of 50).
  util::Table t({"iteration", "T0=1", "T0=5", "T0=10", "T0=20", "T0=50"});
  for (std::size_t it = 50; it <= total; it += 50) {
    std::vector<util::Cell> row{static_cast<std::int64_t>(it)};
    for (std::size_t i = 0; i < results.size(); ++i) {
      double value = 0.0;
      for (const auto& rec : results[i].history) {
        if (rec.iteration <= it) value = rec.global_loss;
      }
      row.emplace_back(value);
    }
    t.add_row(std::move(row));
  }
  bench::emit(t, "Figure 2(b) — global meta-loss vs iteration on Synthetic(0.5,0.5)",
              csv);

  util::Table f({"T0", "final loss", "aggregations", "uplink MB",
                 "sim seconds"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    f.add_row({static_cast<std::int64_t>(t0s[i]),
               results[i].history.back().global_loss,
               static_cast<std::int64_t>(results[i].comm.aggregations),
               results[i].comm.bytes_up / 1e6, results[i].comm.sim_seconds});
  }
  bench::emit(f, "Figure 2(b) summary — larger T0 trades accuracy for comm savings",
              "");
  return 0;
}
