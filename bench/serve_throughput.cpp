// Serving-runtime benchmark for the src/serve/ layer.
//
// Phase 1 (closed loop): C client threads issue adaptation requests
// back-to-back over a fixed pool of repeat tasks, sweeping worker threads ×
// adapted-parameter cache on/off. Shows the cache turning repeat-task
// latency into a lookup (p95, throughput at equal thread count).
//
// Phase 2 (open loop): one submitter paces requests at a multiple of the
// measured capacity against a bounded queue with a per-request deadline.
// Shows admission control shedding a monotonically growing fraction of the
// offered load once it exceeds capacity, instead of queueing without bound.
//
// `--smoke` shrinks everything for CI; `--csv=<path>` dumps the table.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "serve/registry.h"
#include "serve/server.h"
#include "util/error.h"

namespace {

using namespace fedml;

struct TaskPair {
  data::Dataset adapt;
  data::Dataset eval;
};

// K-shot support + held-out eval batch for each usable node of the
// federation, capped at `max_tasks` distinct tasks.
std::vector<TaskPair> make_tasks(const data::FederatedDataset& fd, std::size_t k,
                                 std::size_t max_tasks, util::Rng& rng) {
  std::vector<TaskPair> tasks;
  for (std::size_t id = 0; id < fd.num_nodes() && tasks.size() < max_tasks; ++id) {
    const auto& local = fd.nodes[id];
    if (local.size() <= k) continue;
    util::Rng node_rng = rng.split(id);
    auto split = data::split_k(local, k, node_rng);
    tasks.push_back({std::move(split.train), std::move(split.test)});
  }
  FEDML_CHECK(!tasks.empty(), "no node large enough for the K-shot split");
  return tasks;
}

serve::AdaptRequest make_request(const TaskPair& task, double alpha,
                                 std::size_t steps, double deadline_s) {
  serve::AdaptRequest req;
  req.adapt = task.adapt;
  req.eval = task.eval;
  req.alpha = alpha;
  req.steps = steps;
  req.deadline_s = deadline_s;
  return req;
}

struct RunResult {
  double seconds = 0.0;
  serve::ServerStats stats;
  /// Client-observed submit→response latency (closed loop only). Same
  /// retained obs::Histogram the server stats use — exact percentiles, no
  /// hand-rolled quantile math in the bench.
  obs::Histogram::Snapshot client_ms;
};

// C clients, each submit-and-wait in a loop, tasks assigned round-robin.
RunResult closed_loop(serve::AdaptationServer& server,
                      const std::vector<TaskPair>& tasks, std::size_t requests,
                      std::size_t clients, double alpha, std::size_t steps) {
  std::atomic<std::size_t> next{0};
  obs::SharedHistogram client_ms(
      obs::Histogram::Config{.bounds = {}, .retain_samples = true});
  util::Stopwatch clock;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= requests) return;
        util::Stopwatch request_clock;
        auto fut = server.submit(make_request(
            tasks[i % tasks.size()], alpha, steps,
            std::numeric_limits<double>::infinity()));
        fut.get();
        client_ms.record(request_clock.seconds() * 1e3);
      }
    });
  }
  for (auto& w : workers) w.join();
  return {clock.seconds(), server.stats(), client_ms.snapshot()};
}

// Single submitter paced at `rate` requests/s; never waits for responses.
RunResult open_loop(serve::AdaptationServer& server,
                    const std::vector<TaskPair>& tasks, std::size_t requests,
                    double rate, double deadline_s, double alpha,
                    std::size_t steps) {
  using clock = std::chrono::steady_clock;
  const auto interval =
      std::chrono::duration_cast<clock::duration>(std::chrono::duration<double>(
          1.0 / rate));
  std::vector<std::future<serve::AdaptResponse>> futures;
  futures.reserve(requests);
  util::Stopwatch wall;
  auto due = clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(due);
    futures.push_back(server.submit(
        make_request(tasks[i % tasks.size()], alpha, steps, deadline_s)));
    due += interval;
  }
  for (auto& f : futures) f.get();
  server.drain();
  return {wall.seconds(), server.stats(), {}};
}

// Counter difference after − before (latency percentiles stay cumulative;
// the load sweep reads rates and counts, not percentiles).
serve::ServerStats stats_delta(serve::ServerStats after,
                               const serve::ServerStats& before) {
  after.submitted -= before.submitted;
  after.served -= before.served;
  after.shed_queue_full -= before.shed_queue_full;
  after.shed_deadline -= before.shed_deadline;
  after.cache_hits -= before.cache_hits;
  after.cache_misses -= before.cache_misses;
  return after;
}

void add_row(util::Table& t, const std::string& phase, std::size_t threads,
             bool cache, double offered_rps, const RunResult& r) {
  const auto& s = r.stats;
  t.add_row({phase, static_cast<std::int64_t>(threads),
             std::string(cache ? "on" : "off"), offered_rps,
             static_cast<std::int64_t>(s.submitted), r.seconds,
             static_cast<double>(s.served) / r.seconds, s.p50_ms, s.p95_ms,
             s.p99_ms, r.client_ms.p95, s.hit_rate(), s.shed_rate()});
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const bool smoke = cli.get_flag("smoke");
  const auto csv = cli.get_string("csv", "");
  const auto nodes =
      static_cast<std::size_t>(cli.get_int("nodes", smoke ? 24 : 50));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 10));
  const auto steps = static_cast<std::size_t>(cli.get_int("steps", 10));
  const auto max_tasks =
      static_cast<std::size_t>(cli.get_int("tasks", smoke ? 8 : 16));
  const auto requests =
      static_cast<std::size_t>(cli.get_int("requests", smoke ? 150 : 600));
  const double alpha = cli.get_double("alpha", 0.05);
  const double deadline_s = cli.get_double("deadline", 0.02);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
  cli.finish();

  data::SyntheticConfig dcfg;
  dcfg.num_nodes = nodes;
  dcfg.seed = seed;
  const auto fd = data::make_synthetic(dcfg);
  auto model = nn::make_softmax_regression(dcfg.input_dim, dcfg.num_classes);

  util::Rng init(seed ^ 0xabcdef);
  serve::ModelRegistry registry(std::move(model));
  registry.publish(registry.model().init_params(init));

  util::Rng task_rng(seed + 1);
  const auto tasks = make_tasks(fd, k, max_tasks, task_rng);

  util::Table t({"phase", "threads", "cache", "offered rps", "requests",
                 "seconds", "throughput rps", "p50 ms", "p95 ms", "p99 ms",
                 "client p95 ms", "hit rate", "shed rate"});

  // Phase 1 — closed-loop threads × cache sweep.
  const std::vector<std::size_t> thread_sweep =
      smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{1, 2, 4};
  const std::size_t probe_threads = thread_sweep.back();
  double capacity_rps = 0.0;
  double nocache_rps = 0.0, cache_p95_ms = 0.0, cache_hit_rate = 0.0;
  for (const auto threads : thread_sweep) {
    for (const bool cache : {false, true}) {
      serve::AdaptationServer::Config scfg;
      scfg.threads = threads;
      scfg.max_pending = 4 * requests;  // unbounded in this phase
      scfg.use_cache = cache;
      serve::AdaptationServer server(registry, scfg);
      const auto r = closed_loop(server, tasks, requests,
                                 /*clients=*/2 * threads, alpha, steps);
      add_row(t, "cache_sweep", threads, cache, 0.0, r);
      if (threads == probe_threads && cache) {
        capacity_rps = static_cast<double>(r.stats.served) / r.seconds;
        cache_p95_ms = r.stats.p95_ms;
        cache_hit_rate = r.stats.hit_rate();
      }
      if (threads == probe_threads && !cache)
        nocache_rps = static_cast<double>(r.stats.served) / r.seconds;
    }
  }

  // Phase 2 — open-loop load shedding at multiples of measured capacity.
  const std::vector<double> mults =
      smoke ? std::vector<double>{0.5, 4.0}
            : std::vector<double>{0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  double max_shed_rate = 0.0;
  for (const double m : mults) {
    serve::AdaptationServer::Config scfg;
    scfg.threads = probe_threads;
    scfg.max_pending = 8;  // bounded queue: admission control active
    scfg.use_cache = true;
    serve::AdaptationServer server(registry, scfg);
    // Warm the adapted-parameter cache so the sweep measures steady-state
    // shedding, not first-touch adaptation misses.
    closed_loop(server, tasks, tasks.size(), /*clients=*/1, alpha, steps);
    const auto warm = server.stats();
    const double rate = m * capacity_rps;
    auto r = open_loop(server, tasks, requests, rate, deadline_s, alpha, steps);
    r.stats = stats_delta(r.stats, warm);
    add_row(t, "load_sweep", probe_threads, true, rate, r);
    if (r.stats.shed_rate() > max_shed_rate) max_shed_rate = r.stats.shed_rate();
  }

  bench::emit(t, "serving runtime — cache & admission-control sweeps", csv);
  bench::write_bench_json(
      "serve_throughput",
      {
          {"capacity_rps_cached", capacity_rps},
          {"capacity_rps_uncached", nocache_rps},
          {"cache_speedup", nocache_rps > 0.0 ? capacity_rps / nocache_rps : 0.0},
          {"cache_hit_rate", cache_hit_rate},
          {"p95_ms_cached", cache_p95_ms},
          {"max_shed_rate", max_shed_rate},
      });
  return 0;
}
