// Figure 3(d): fast adaptation performance on the MNIST-like task —
// multinomial logistic regression, 100 nodes with two digits each.
// Paper shape: FedML's meta-initialization adapts markedly better than the
// FedAvg global model, especially with few samples at the target.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  bench::AdaptationComparisonConfig cfg;
  cfg.total_iterations =
      static_cast<std::size_t>(cli.get_int("iterations", 400));
  cfg.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cfg.adapt_steps = static_cast<std::size_t>(cli.get_int("adapt-steps", 5));
  // Paper uses α = β = 0.01 on real MNIST; scaled for our stand-in (the
  // meta-gradient is small at K-shot batch sizes — see EXPERIMENTS.md).
  cfg.alpha = cli.get_double("alpha", 0.1);
  cfg.beta = cli.get_double("beta", 0.3);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 100));
  const auto side = static_cast<std::size_t>(cli.get_int("side", 14));
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  data::MnistLikeConfig mcfg;
  mcfg.num_nodes = nodes;
  mcfg.side = side;
  mcfg.seed = cfg.seed;
  const auto fd = data::make_mnist_like(mcfg);
  const auto model = nn::make_softmax_regression(fd.input_dim, fd.num_classes);

  bench::run_adaptation_comparison(
      fd, model, cfg,
      "Figure 3(d) — adaptation on MNIST-like: FedML vs FedAvg", csv);
  return 0;
}
