// Figure 4(a)–(d): robustness–accuracy trade-off of Robust FedML on the
// MNIST-like task with T0 = 5. Compares FedML against Robust FedML with
// λ ∈ {0.1, 1, 10}. The meta-model adapts at each target with CLEAN training
// data, then is evaluated on (a,c) clean test data and (b,d) FGSM-perturbed
// test data (ξ). Paper parameters: ν = 1, R = 2, N0 = 7, Ta = 10, transport
// cost ‖x − x′‖²₂ with labels never perturbed.
// Paper shape: smaller λ → slightly worse clean performance, much better
// adversarial performance; λ = 10's uncertainty set is too small to help.

#include "bench_common.h"
#include "robust/adversary.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 60));
  const auto side = static_cast<std::size_t>(cli.get_int("side", 14));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 300));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto steps = static_cast<std::size_t>(cli.get_int("adapt-steps", 5));
  const double xi = cli.get_double("xi", 0.2);
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const double alpha = cli.get_double("alpha", 0.05);
  const double beta = cli.get_double("beta", 0.1);
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  auto e = bench::mnist_experiment(nodes, side, k, seed);
  const auto clip = robust::ClipRange{{0.0, 1.0}};

  core::FedMLConfig base;
  base.alpha = alpha;
  base.beta = beta;
  base.total_iterations = total;
  base.local_steps = 5;  // paper: T0 = 5
  base.threads = threads;
  base.track_loss = false;

  struct Variant {
    std::string name;
    nn::ParamList theta;
  };
  std::vector<Variant> variants;
  variants.push_back(
      {"FedML", core::train_fedml(*e.model, e.sources, e.theta0, base).theta});
  {
    // ADML-style adversarial-training comparator (paper Section II, ref [11]).
    core::AdversarialFedMLConfig acfg;
    acfg.base = base;
    acfg.xi = xi;
    acfg.clip = clip;
    variants.push_back(
        {"AT-FedML",
         core::train_adversarial_fedml(*e.model, e.sources, e.theta0, acfg)
             .theta});
  }
  for (const double lambda : {0.1, 1.0, 10.0}) {
    core::RobustFedMLConfig rcfg;
    rcfg.base = base;
    rcfg.lambda = lambda;
    rcfg.nu = 1.0;            // paper: ν = 1
    rcfg.ascent_steps = 10;   // paper: Ta = 10
    rcfg.rounds_between = 7;  // paper: N0 = 7
    rcfg.max_generations = 2; // paper: R = 2
    rcfg.clip = clip;
    variants.push_back(
        {"Robust(l=" + std::to_string(lambda).substr(0, 4) + ")",
         core::train_robust_fedml(*e.model, e.sources, e.theta0, rcfg).theta});
  }

  const auto attack = [&](const nn::ParamList& params, const data::Dataset& d) {
    return robust::fgsm_attack(*e.model, params, d, xi, clip);
  };

  util::Table t({"variant", "adapt step", "clean loss", "adv loss",
                 "clean acc", "adv acc"});
  for (const auto& v : variants) {
    util::Rng e1(seed + 5), e2(seed + 5);
    const auto clean = core::evaluate_targets(*e.model, v.theta, e.fd,
                                              e.target_ids, k, base.alpha,
                                              steps, e1);
    const auto adv = core::evaluate_targets(*e.model, v.theta, e.fd,
                                            e.target_ids, k, base.alpha, steps,
                                            e2, attack);
    for (std::size_t s = 0; s <= steps; ++s) {
      t.add_row({v.name, static_cast<std::int64_t>(s), clean.loss[s],
                 adv.loss[s], clean.accuracy[s], adv.accuracy[s]});
    }
  }
  bench::emit(t,
              "Figure 4(a)-(d) — Robust FedML robustness/accuracy trade-off "
              "(MNIST-like, FGSM xi=" + std::to_string(xi).substr(0, 4) + ")",
              csv);
  return 0;
}
