// Extension: richer edge models. The paper's MNIST experiment uses convex
// multinomial logistic regression; the natural next step for image tasks is
// a small CNN — which requires exact meta-gradients through a convolution.
// This bench compares FedML with the paper's linear model against FedML with
// a Conv(5×5)+ReLU+Linear model on the MNIST-like federation.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 40));
  const auto side = static_cast<std::size_t>(cli.get_int("side", 14));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 120));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  data::MnistLikeConfig dcfg;
  dcfg.num_nodes = nodes;
  dcfg.side = side;
  dcfg.seed = seed;
  const auto fd = data::make_mnist_like(dcfg);

  struct Arch {
    std::string name;
    std::shared_ptr<nn::Module> model;
  };
  const std::vector<Arch> archs = {
      {"softmax regression (paper)",
       nn::make_softmax_regression(fd.input_dim, fd.num_classes)},
      {"CNN (8 conv5x5 filters + relu + linear)",
       nn::make_cnn(side, 5, fd.num_classes, 8)},
  };

  util::Table t({"model", "params", "target acc (1 step)",
                 "target acc (5 steps)", "target loss (5 steps)", "wall s"});
  for (const auto& arch : archs) {
    auto e = bench::make_experiment(fd, arch.model, k, seed + 1);
    core::FedMLConfig cfg;
    cfg.alpha = 0.1;
    cfg.beta = 0.3;
    cfg.total_iterations = total;
    cfg.local_steps = 5;
    cfg.threads = threads;
    cfg.track_loss = false;
    util::Stopwatch sw;
    const auto r = core::train_fedml(*e.model, e.sources, e.theta0, cfg);
    const double wall = sw.seconds();
    util::Rng er(seed + 5);
    const auto curve = core::evaluate_targets(*e.model, r.theta, e.fd,
                                              e.target_ids, k, cfg.alpha, 5, er);
    t.add_row({arch.name, static_cast<std::int64_t>(arch.model->num_scalars()),
               curve.accuracy[1], curve.accuracy[5], curve.loss[5], wall});
  }
  bench::emit(t, "Extension — CNN vs linear model under FedML (MNIST-like)",
              csv);
  return 0;
}
