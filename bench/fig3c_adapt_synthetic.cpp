// Figure 3(c): fast adaptation performance on Synthetic(0.5,0.5) — FedML vs
// FedAvg at held-out target nodes, for several target dataset sizes K.
// Paper shape: FedML adapts better, and its advantage is largest for small K
// and few adaptation steps; FedAvg tends to overfit small target sets.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  bench::AdaptationComparisonConfig cfg;
  cfg.total_iterations =
      static_cast<std::size_t>(cli.get_int("iterations", 400));
  cfg.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cfg.adapt_steps = static_cast<std::size_t>(cli.get_int("adapt-steps", 5));
  // Learning rates scaled to our synthetic stand-in's gradient magnitudes
  // (paper uses 0.01 on its data; see EXPERIMENTS.md). Override via CLI.
  cfg.alpha = cli.get_double("alpha", 0.05);
  cfg.beta = cli.get_double("beta", 0.05);
  cfg.ks = {5, 10, 15};
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 50));
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  data::SyntheticConfig scfg;
  scfg.alpha = 0.5;
  scfg.beta = 0.5;
  scfg.num_nodes = nodes;
  scfg.seed = cfg.seed;
  const auto fd = data::make_synthetic(scfg);
  const auto model = nn::make_softmax_regression(fd.input_dim, fd.num_classes);

  bench::run_adaptation_comparison(
      fd, model, cfg,
      "Figure 3(c) — adaptation on Synthetic(0.5,0.5): FedML vs FedAvg", csv);
  return 0;
}
