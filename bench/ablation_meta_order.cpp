// Ablation: what does the exact second-order meta-gradient buy over cheaper
// alternatives? Compares FedML (exact MAML), FOMAML (first-order), and
// Reptile on the same federation: final meta-objective, target adaptation
// quality, and wall-clock cost per run.

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 50));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 200));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const double alpha = cli.get_double("alpha", 0.05);
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  auto e = bench::synthetic_experiment(0.5, 0.5, nodes, k, seed);

  struct Row {
    std::string name;
    nn::ParamList theta;
    double seconds;
  };
  std::vector<Row> rows;

  {
    core::FedMLConfig cfg;
    cfg.alpha = alpha;
    cfg.beta = 0.01;
    cfg.total_iterations = total;
    cfg.local_steps = 5;
    cfg.threads = threads;
    cfg.track_loss = false;
    util::Stopwatch sw;
    auto r = core::train_fedml(*e.model, e.sources, e.theta0, cfg);
    rows.push_back({"FedML (2nd order)", std::move(r.theta), sw.seconds()});
    cfg.order = core::MetaOrder::kFirstOrder;
    sw.reset();
    r = core::train_fedml(*e.model, e.sources, e.theta0, cfg);
    rows.push_back({"FOMAML (1st order)", std::move(r.theta), sw.seconds()});
  }
  {
    core::ReptileConfig cfg;
    cfg.alpha = alpha;
    cfg.beta_rep = 0.3;
    cfg.inner_steps = 3;
    cfg.total_iterations = total;
    cfg.local_steps = 5;
    cfg.threads = threads;
    cfg.track_loss = false;
    util::Stopwatch sw;
    auto r = core::train_reptile(*e.model, e.sources, e.theta0, cfg);
    rows.push_back({"Reptile", std::move(r.theta), sw.seconds()});
  }

  util::Table t({"algorithm", "meta objective G", "target acc (1 step)",
                 "target acc (5 steps)", "target loss (5 steps)", "wall s"});
  for (const auto& row : rows) {
    util::Rng er(seed + 5);
    const auto curve = core::evaluate_targets(*e.model, row.theta, e.fd,
                                              e.target_ids, k, alpha, 5, er);
    t.add_row({row.name,
               core::global_meta_loss(*e.model, row.theta, e.sources, alpha),
               curve.accuracy[1], curve.accuracy[5], curve.loss[5],
               row.seconds});
  }
  bench::emit(t, "Ablation — meta-gradient order (Synthetic(0.5,0.5))", csv);
  return 0;
}
