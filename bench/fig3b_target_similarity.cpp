// Figure 3(b): impact of target–source similarity on test performance.
// Part 1 follows the paper's protocol: train FedML on each Synthetic(ᾱ,β̄)
// federation and evaluate fast adaptation on its held-out targets.
// Part 2 isolates the Theorem-3 mechanism exactly on the quadratic testbed:
// the post-adaptation optimality gap grows with ‖θ_t* − θ_c*‖.

#include "bench_common.h"
#include "theory/quadratic.h"

int main(int argc, char** argv) {
  using namespace fedml;
  util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 50));
  const auto total = static_cast<std::size_t>(cli.get_int("iterations", 200));
  const auto k = static_cast<std::size_t>(cli.get_int("k", 5));
  const auto steps = static_cast<std::size_t>(cli.get_int("adapt-steps", 5));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::string csv = cli.get_string("csv", "");
  cli.finish();

  // ---- Part 1: paper protocol across the three synthetic federations -----
  const double params[][2] = {{0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}};
  util::Table t({"adapt step", "Synthetic(0,0) acc", "Synthetic(0.5,0.5) acc",
                 "Synthetic(1,1) acc"});
  std::vector<core::AdaptationCurve> curves;
  for (const auto& ab : params) {
    auto e = bench::synthetic_experiment(ab[0], ab[1], nodes, k, seed);
    core::FedMLConfig cfg;
    cfg.alpha = 0.01;
    cfg.beta = 0.01;
    cfg.total_iterations = total;
    cfg.local_steps = 5;
    cfg.threads = threads;
    cfg.track_loss = false;
    const auto r = core::train_fedml(*e.model, e.sources, e.theta0, cfg);
    util::Rng er(seed + 7);
    curves.push_back(core::evaluate_targets(*e.model, r.theta, e.fd,
                                            e.target_ids, k, 0.01, steps, er));
  }
  for (std::size_t s = 0; s <= steps; ++s) {
    t.add_row({static_cast<std::int64_t>(s), curves[0].accuracy[s],
               curves[1].accuracy[s], curves[2].accuracy[s]});
  }
  bench::emit(t, "Figure 3(b) — target adaptation accuracy per federation", csv);

  // ---- Part 2: exact Theorem-3 gap on quadratics -------------------------
  util::Rng rng(seed);
  const auto fed =
      theory::QuadraticFederation::shared_curvature(10, 6, 1.0, 3.0, 1.0, rng);
  const double alpha = 0.1;
  const tensor::Tensor theta_c = fed.meta_minimizer(alpha);
  util::Table q({"||theta_t* - theta_c*||", "adaptation gap L_t(phi_t)"});
  for (const double dist : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    theory::QuadraticTask target = fed.tasks()[0];
    for (std::size_t j = 0; j < 6; ++j)
      target.center(j, 0) = theta_c(j, 0) + dist / std::sqrt(6.0);
    const tensor::Tensor phi = target.adapted(theta_c, alpha);
    q.add_row({dist, target.loss(phi)});
  }
  bench::emit(q, "Theorem 3 — adaptation gap vs target-source distance "
                 "(exact, quadratic testbed)",
              "");
  return 0;
}
